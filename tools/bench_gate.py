#!/usr/bin/env python3
"""Bench regression gate: diff a --bench-json run against a baseline.

Both files are the documents written by the benches' bench_json_reporter
(bench_common.hpp): {"bench": ..., "entries": [{"name", "threads",
"trials", "ops_per_ms": {"mean", "stddev", ...}}, ...]}.  Entries are
joined on their name; a candidate entry regresses when its mean throughput
drops below the baseline mean by more than BOTH the relative threshold and
the noise allowance:

    drop > max(threshold * base_mean,
               noise_sigma * hypot(base_stddev, cand_stddev))

(both runs' trial-to-trial stddevs combine in quadrature -- a drop has to
clear the noise of the run that measured it, not just the baseline's).

Checked-in baselines were recorded on some machine; yours is faster or
slower everywhere by roughly one factor.  --normalize estimates that
factor as the median candidate/baseline mean ratio across all joined
entries and divides it out, so the gate catches *relative* regressions
(one configuration sinking while the rest hold) rather than absolute
machine speed.  Without --normalize the comparison is absolute -- right
for same-machine before/after runs.

--self-test needs only the baseline: it replays the baseline against
itself (must pass) and against a copy with every mean scaled by 0.8 (a
synthetic 20% regression -- must fail), exiting nonzero if the gate logic
misbehaves.  CI runs this deterministic check plus a lenient --normalize
diff of the real run.

Bench documents carry a "kernel" field naming the in-node search kernel the
run executed (scalar / branchfree / sse2 / avx2 -- see
src/skiptree/detail/kernel.hpp).  Comparing runs with different kernels is a
configuration error, not a performance signal, so the gate REFUSES when both
documents name a kernel and the names differ; --ignore-kernel overrides for
deliberate cross-kernel studies.  A document without the field (pre-kernel
baselines) only warns.

--check-metrics validates a --metrics-json sidecar (the JSON-lines file
benches write next to their bench JSON) instead of diffing throughput.
--require NAME fails unless a counter/gauge has a nonzero value (for a
histogram, a nonzero sample count) -- use it to prove an instrumented
path actually ran, e.g. that a contended run recorded a limbo-bytes
high-watermark.  --require-under NAME=LIMIT additionally bounds the
value: `--require-under ebr.limbo_bytes_hwm=1048576` fails the gate if
retired memory ever piled past 1 MiB, which is how CI keeps the
stall-tolerant reclamation cap honest on real workloads.

Telemetry sidecars (--telemetry-json, common/telemetry.hpp) are accepted
by the same flag: every numeric field of a "sketch" summary line expands
to a synthetic gauge named {sketch}.{field}, so latency quantiles gate
exactly like counters -- `--require op.add.count` proves the add path
was sampled, and `--require-under op.contains.p99_us=20000` fails the
build when sampled contains latency blows past 20 ms at p99.

Exit status: 0 clean, 1 regression/check failure (or self-test logic
failure), 2 usage.
"""

import argparse
import copy
import io
import json
import math
import os
import statistics
import sys
import tempfile


def load(path):
    with open(path) as f:
        doc = json.load(f)
    entries = {e["name"]: e for e in doc.get("entries", [])}
    if not entries:
        raise SystemExit(f"bench_gate: no entries in {path}")
    return doc, entries


def check_kernels(base_doc, cand_doc, ignore, out=sys.stdout):
    """Refuse mismatched-kernel comparisons.  Returns True when comparable."""
    bk = base_doc.get("kernel")
    ck = cand_doc.get("kernel")
    if bk is None or ck is None:
        missing = "baseline" if bk is None else "candidate"
        print(f"bench_gate: WARNING: {missing} document has no kernel stamp; "
              f"comparing anyway", file=out)
        return True
    if bk == ck:
        return True
    if ignore:
        print(f"bench_gate: kernel mismatch ({bk} vs {ck}) ignored "
              f"(--ignore-kernel)", file=out)
        return True
    print(f"bench_gate: REFUSING to compare: baseline kernel '{bk}' != "
          f"candidate kernel '{ck}'.  Rebuild/rerun with matching kernels "
          f"(LFST_SIMD / LFST_SIMD_ISA) or pass --ignore-kernel for a "
          f"deliberate cross-kernel study.", file=out)
    return False


def joined(base, cand):
    names = [n for n in base if n in cand]
    missing = [n for n in base if n not in cand]
    return names, missing


def scale_factor(base, cand, names):
    ratios = []
    for n in names:
        bm = base[n]["ops_per_ms"]["mean"]
        cm = cand[n]["ops_per_ms"]["mean"]
        if bm > 0 and cm > 0:
            ratios.append(cm / bm)
    return statistics.median(ratios) if ratios else 1.0


def diff(base, cand, threshold, noise_sigma, normalize, out=sys.stdout):
    """Returns the list of regressed entry names (missing entries count)."""
    names, missing = joined(base, cand)
    factor = scale_factor(base, cand, names) if normalize else 1.0
    if normalize:
        print(f"bench_gate: machine factor (median ratio) = {factor:.3f}",
              file=out)
    regressed = list(missing)
    for n in missing:
        print(f"  MISSING  {n}: in baseline but not in candidate", file=out)
    for n in names:
        b = base[n]["ops_per_ms"]
        c = cand[n]["ops_per_ms"]
        cand_mean = c["mean"] / factor
        drop = b["mean"] - cand_mean
        allowance = max(threshold * b["mean"],
                        noise_sigma * math.hypot(b["stddev"],
                                                 c["stddev"] / factor))
        if drop > allowance:
            regressed.append(n)
            print(f"  REGRESSED {n}: baseline {b['mean']:.1f} -> "
                  f"candidate {cand_mean:.1f} ops/ms "
                  f"(drop {drop:.1f} > allowance {allowance:.1f})", file=out)
    print(f"bench_gate: {len(names)} entries compared, "
          f"{len(missing)} missing, "
          f"{len(regressed) - len(missing)} regressed", file=out)
    return regressed


def load_metrics(path):
    """Parse a JSON-lines metrics/telemetry sidecar into {name: record}.

    Counters and gauges carry "value"; histograms carry "count"/"sum".
    Telemetry "sketch" summaries expand into one synthetic gauge per
    numeric field, named {sketch}.{field} (op.add.p99_us, op.add.count,
    storage.wal.batch.p99, ...), so quantiles gate like any metric.
    Later lines win on a name collision (a process that dumps twice
    leaves its final snapshot last).
    """
    by_name = {}
    total = 0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            total += 1
            kind = rec.get("type")
            if kind in ("counter", "histogram", "gauge"):
                by_name[rec["name"]] = rec
            elif kind == "sketch":
                stem = rec.get("name", "sketch")
                for field, v in rec.items():
                    if field in ("type", "name"):
                        continue
                    if isinstance(v, (int, float)) and v == v:
                        by_name[f"{stem}.{field}"] = {
                            "type": "gauge",
                            "name": f"{stem}.{field}",
                            "value": v,
                        }
    if total == 0:
        raise SystemExit(f"bench_gate: metrics sidecar {path} is empty")
    return by_name, total


def metric_value(rec):
    if rec["type"] == "histogram":
        return rec.get("count", 0)
    return rec.get("value", 0)


def check_metrics(path, require, require_under, out=sys.stdout):
    """Returns the number of failed requirements."""
    by_name, total = load_metrics(path)
    print(f"bench_gate: {total} sidecar records, "
          f"{len(by_name)} named metrics in {path}", file=out)
    failures = 0
    for name in require:
        rec = by_name.get(name)
        if rec is None:
            failures += 1
            print(f"  MISSING  {name}: not in sidecar", file=out)
        elif metric_value(rec) <= 0:
            failures += 1
            print(f"  ZERO     {name}: present but never recorded", file=out)
        else:
            print(f"  ok       {name} = {metric_value(rec)}", file=out)
    for spec in require_under:
        name, sep, limit = spec.rpartition("=")
        if not sep:
            raise SystemExit(
                f"bench_gate: --require-under wants NAME=LIMIT, got {spec!r}")
        limit = float(limit)
        rec = by_name.get(name)
        if rec is None:
            failures += 1
            print(f"  MISSING  {name}: not in sidecar", file=out)
        elif metric_value(rec) > limit:
            failures += 1
            print(f"  EXCEEDED {name} = {metric_value(rec)} "
                  f"> limit {limit:g}", file=out)
        else:
            print(f"  ok       {name} = {metric_value(rec)} "
                  f"<= {limit:g}", file=out)
    print(f"bench_gate: {failures} metric requirement(s) failed", file=out)
    return failures


def self_test(base, threshold, noise_sigma):
    clean = diff(base, base, threshold, noise_sigma, normalize=False)
    if clean:
        print("bench_gate self-test: FAIL (clean self-compare regressed)")
        return 1
    slowed = copy.deepcopy(base)
    for e in slowed.values():
        e["ops_per_ms"]["mean"] *= 0.8
    # The synthetic regression must trip even with normalization on: a
    # uniform 20% slowdown with --normalize would be absorbed into the
    # machine factor, so self-test exercises the absolute path.
    broken = diff(base, slowed, threshold, noise_sigma, normalize=False)
    if not broken:
        print("bench_gate self-test: FAIL "
              "(synthetic 20% regression slipped through)")
        return 1
    sink = io.StringIO()
    if check_kernels({"kernel": "avx2"}, {"kernel": "scalar"}, False, sink):
        print("bench_gate self-test: FAIL (kernel mismatch not refused)")
        return 1
    if not check_kernels({"kernel": "avx2"}, {"kernel": "scalar"}, True, sink):
        print("bench_gate self-test: FAIL (--ignore-kernel did not override)")
        return 1
    if not check_kernels({"kernel": "avx2"}, {"kernel": "avx2"}, False, sink):
        print("bench_gate self-test: FAIL (matching kernels refused)")
        return 1
    if not check_kernels({}, {"kernel": "avx2"}, False, sink):
        print("bench_gate self-test: FAIL (unstamped baseline refused)")
        return 1

    # Sketch expansion: telemetry summary lines must gate like gauges.
    with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                     delete=False) as f:
        f.write(json.dumps({"type": "sketch", "name": "op.add",
                            "count": 42, "p50_us": 1.5, "p99_us": 12.0,
                            "max_us": 30.0, "mean_us": 2.0}) + "\n")
        f.write(json.dumps({"type": "counter", "name": "tree.cas_failures",
                            "value": 7}) + "\n")
        sketch_path = f.name
    try:
        passed = check_metrics(sketch_path,
                               ["op.add.count", "tree.cas_failures"],
                               ["op.add.p99_us=100"], out=sink) == 0
        tripped = check_metrics(sketch_path, [],
                                ["op.add.p99_us=1"], out=sink) == 1
    finally:
        os.unlink(sketch_path)
    if not passed:
        print("bench_gate self-test: FAIL (sketch fields not gateable)")
        return 1
    if not tripped:
        print("bench_gate self-test: FAIL "
              "(p99 over --require-under limit slipped through)")
        return 1

    print("bench_gate self-test: OK "
          "(clean run passes, 20% synthetic regression fails, "
          "kernel mismatch refused, sketch quantiles gate)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline",
                    help="checked-in BENCH_*.json baseline")
    ap.add_argument("--candidate",
                    help="bench JSON from the run under test")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative drop tolerated (default 0.15)")
    ap.add_argument("--noise-sigma", type=float, default=2.0,
                    help="stddev multiples tolerated (default 2.0)")
    ap.add_argument("--normalize", action="store_true",
                    help="divide out the median machine-speed ratio")
    ap.add_argument("--ignore-kernel", action="store_true",
                    help="compare runs even when their search-kernel stamps "
                         "differ (deliberate cross-kernel studies only)")
    ap.add_argument("--max-regressions", type=int, default=0,
                    help="entries allowed to regress before the gate fails "
                         "(default 0; CI uses a small slack for noisy "
                         "shared runners)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate trips on a synthetic 20%% "
                         "regression and passes a clean self-compare")
    ap.add_argument("--check-metrics", metavar="PATH",
                    help="validate a --metrics-json sidecar instead of "
                         "(or alongside) a throughput diff")
    ap.add_argument("--require", nargs="+", default=[], metavar="NAME",
                    help="sidecar metrics that must exist with a nonzero "
                         "value (histograms: nonzero sample count)")
    ap.add_argument("--require-under", nargs="+", default=[],
                    metavar="NAME=LIMIT",
                    help="sidecar metrics that must exist and stay at or "
                         "below LIMIT (e.g. ebr.limbo_bytes_hwm=1048576)")
    args = ap.parse_args()

    if args.check_metrics:
        failed = check_metrics(args.check_metrics, args.require,
                               args.require_under)
        if failed:
            sys.exit(1)
        if not args.baseline:
            sys.exit(0)
    if not args.baseline:
        ap.error("--baseline is required unless --check-metrics")

    base_doc, base = load(args.baseline)
    if args.self_test:
        sys.exit(self_test(base, args.threshold, args.noise_sigma))
    if not args.candidate:
        ap.error("--candidate is required unless --self-test")
    cand_doc, cand = load(args.candidate)
    if not check_kernels(base_doc, cand_doc, args.ignore_kernel):
        sys.exit(1)
    regressed = diff(base, cand, args.threshold, args.noise_sigma,
                     args.normalize)
    if len(regressed) > args.max_regressions:
        sys.exit(1)
    if regressed:
        print(f"bench_gate: {len(regressed)} regression(s) within "
              f"--max-regressions {args.max_regressions}; passing")
    sys.exit(0)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Bench regression gate: diff a --bench-json run against a baseline.

Both files are the documents written by the benches' bench_json_reporter
(bench_common.hpp): {"bench": ..., "entries": [{"name", "threads",
"trials", "ops_per_ms": {"mean", "stddev", ...}}, ...]}.  Entries are
joined on their name; a candidate entry regresses when its mean throughput
drops below the baseline mean by more than BOTH the relative threshold and
the noise allowance:

    drop > max(threshold * base_mean,
               noise_sigma * hypot(base_stddev, cand_stddev))

(both runs' trial-to-trial stddevs combine in quadrature -- a drop has to
clear the noise of the run that measured it, not just the baseline's).

Checked-in baselines were recorded on some machine; yours is faster or
slower everywhere by roughly one factor.  --normalize estimates that
factor as the median candidate/baseline mean ratio across all joined
entries and divides it out, so the gate catches *relative* regressions
(one configuration sinking while the rest hold) rather than absolute
machine speed.  Without --normalize the comparison is absolute -- right
for same-machine before/after runs.

--self-test needs only the baseline: it replays the baseline against
itself (must pass) and against a copy with every mean scaled by 0.8 (a
synthetic 20% regression -- must fail), exiting nonzero if the gate logic
misbehaves.  CI runs this deterministic check plus a lenient --normalize
diff of the real run.

Exit status: 0 clean, 1 regression (or self-test logic failure), 2 usage.
"""

import argparse
import copy
import json
import math
import statistics
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    entries = {e["name"]: e for e in doc.get("entries", [])}
    if not entries:
        raise SystemExit(f"bench_gate: no entries in {path}")
    return doc, entries


def joined(base, cand):
    names = [n for n in base if n in cand]
    missing = [n for n in base if n not in cand]
    return names, missing


def scale_factor(base, cand, names):
    ratios = []
    for n in names:
        bm = base[n]["ops_per_ms"]["mean"]
        cm = cand[n]["ops_per_ms"]["mean"]
        if bm > 0 and cm > 0:
            ratios.append(cm / bm)
    return statistics.median(ratios) if ratios else 1.0


def diff(base, cand, threshold, noise_sigma, normalize, out=sys.stdout):
    """Returns the list of regressed entry names (missing entries count)."""
    names, missing = joined(base, cand)
    factor = scale_factor(base, cand, names) if normalize else 1.0
    if normalize:
        print(f"bench_gate: machine factor (median ratio) = {factor:.3f}",
              file=out)
    regressed = list(missing)
    for n in missing:
        print(f"  MISSING  {n}: in baseline but not in candidate", file=out)
    for n in names:
        b = base[n]["ops_per_ms"]
        c = cand[n]["ops_per_ms"]
        cand_mean = c["mean"] / factor
        drop = b["mean"] - cand_mean
        allowance = max(threshold * b["mean"],
                        noise_sigma * math.hypot(b["stddev"],
                                                 c["stddev"] / factor))
        if drop > allowance:
            regressed.append(n)
            print(f"  REGRESSED {n}: baseline {b['mean']:.1f} -> "
                  f"candidate {cand_mean:.1f} ops/ms "
                  f"(drop {drop:.1f} > allowance {allowance:.1f})", file=out)
    print(f"bench_gate: {len(names)} entries compared, "
          f"{len(missing)} missing, "
          f"{len(regressed) - len(missing)} regressed", file=out)
    return regressed


def self_test(base, threshold, noise_sigma):
    clean = diff(base, base, threshold, noise_sigma, normalize=False)
    if clean:
        print("bench_gate self-test: FAIL (clean self-compare regressed)")
        return 1
    slowed = copy.deepcopy(base)
    for e in slowed.values():
        e["ops_per_ms"]["mean"] *= 0.8
    # The synthetic regression must trip even with normalization on: a
    # uniform 20% slowdown with --normalize would be absorbed into the
    # machine factor, so self-test exercises the absolute path.
    broken = diff(base, slowed, threshold, noise_sigma, normalize=False)
    if not broken:
        print("bench_gate self-test: FAIL "
              "(synthetic 20% regression slipped through)")
        return 1
    print("bench_gate self-test: OK "
          "(clean run passes, 20% synthetic regression fails)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="checked-in BENCH_*.json baseline")
    ap.add_argument("--candidate",
                    help="bench JSON from the run under test")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative drop tolerated (default 0.15)")
    ap.add_argument("--noise-sigma", type=float, default=2.0,
                    help="stddev multiples tolerated (default 2.0)")
    ap.add_argument("--normalize", action="store_true",
                    help="divide out the median machine-speed ratio")
    ap.add_argument("--max-regressions", type=int, default=0,
                    help="entries allowed to regress before the gate fails "
                         "(default 0; CI uses a small slack for noisy "
                         "shared runners)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate trips on a synthetic 20%% "
                         "regression and passes a clean self-compare")
    args = ap.parse_args()

    _, base = load(args.baseline)
    if args.self_test:
        sys.exit(self_test(base, args.threshold, args.noise_sigma))
    if not args.candidate:
        ap.error("--candidate is required unless --self-test")
    _, cand = load(args.candidate)
    regressed = diff(base, cand, args.threshold, args.noise_sigma,
                     args.normalize)
    if len(regressed) > args.max_regressions:
        sys.exit(1)
    if regressed:
        print(f"bench_gate: {len(regressed)} regression(s) within "
              f"--max-regressions {args.max_regressions}; passing")
    sys.exit(0)


if __name__ == "__main__":
    main()

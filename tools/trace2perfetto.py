#!/usr/bin/env python3
"""Convert an LFST binary span trace to Chrome/Perfetto trace_event JSON.

The binary format is produced by write_binary_file() in
src/common/trace_export.hpp (an -DLFST_TRACE=ON build with --trace-bin=PATH
on any bench).  Layout, little-endian:

    header  "<8sQdQ"     magic b"LFSTTRC1", u64 count, f64 ticks_per_us,
                         u64 tsc base (already subtracted from the records)
    record  "<QQQIIH6x"  u64 t0, u64 t1, u64 thread,
                         u32 retries, u32 depth, u16 span id

Span ids index kSpanNames in src/common/trace.hpp; the table below must be
kept in lockstep with that enum (the C++ side static_asserts its own copy).

Usage:
    tools/trace2perfetto.py trace.bin [-o trace.json]

Then open the JSON at https://ui.perfetto.dev or chrome://tracing.
"""

import argparse
import json
import struct
import sys

MAGIC = b"LFSTTRC1"
HEADER = struct.Struct("<8sQdQ")
RECORD = struct.Struct("<QQQIIH6x")

# Mirrors lfst::trace::kSpanNames (trace.hpp); order matters.
SPAN_NAMES = [
    "skiptree.contains",
    "skiptree.add",
    "skiptree.remove",
    "skiplist.contains",
    "skiplist.add",
    "skiplist.remove",
    "harris.contains",
    "harris.add",
    "harris.remove",
    "blink.contains",
    "blink.add",
    "blink.remove",
    "pool.refill",
    "ebr.advance",
    "skiptree.health_probe",
]


def convert(blob: bytes) -> dict:
    if len(blob) < HEADER.size:
        raise ValueError("truncated header (%d bytes)" % len(blob))
    magic, count, ticks_per_us, _base = HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise ValueError("bad magic %r (not an LFST binary trace?)" % magic)
    if ticks_per_us <= 0.0:
        ticks_per_us = 1.0
    need = HEADER.size + RECORD.size * count
    if len(blob) < need:
        raise ValueError(
            "truncated body: header promises %d records (%d bytes), file has %d"
            % (count, need, len(blob))
        )
    events = []
    for i in range(count):
        t0, t1, thread, retries, depth, sid = RECORD.unpack_from(
            blob, HEADER.size + RECORD.size * i
        )
        if sid >= len(SPAN_NAMES):
            raise ValueError("record %d has unknown span id %d" % (i, sid))
        events.append(
            {
                "name": SPAN_NAMES[sid],
                "ph": "X",
                "pid": 0,
                "tid": thread,
                "ts": t0 / ticks_per_us,
                "dur": max(t1 - t0, 0) / ticks_per_us,
                "args": {"retries": retries, "depth": depth},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("input", help="binary trace file (from --trace-bin=PATH)")
    ap.add_argument(
        "-o",
        "--output",
        default=None,
        help="output JSON path (default: <input>.json)",
    )
    args = ap.parse_args(argv)

    with open(args.input, "rb") as f:
        blob = f.read()
    try:
        doc = convert(blob)
    except ValueError as e:
        print("trace2perfetto: %s" % e, file=sys.stderr)
        return 1

    out_path = args.output or args.input + ".json"
    with open(out_path, "w") as f:
        json.dump(doc, f)
    print(
        "trace2perfetto: %d spans -> %s" % (len(doc["traceEvents"]), out_path)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

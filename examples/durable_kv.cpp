// Durable key-value store: open-or-recover, put/get, survive a crash.
//
// The smallest end-to-end tour of the storage layer.  A durable_tree over
// (id, value) records backs a toy KV store; the program runs three acts:
//
//   1. populate: open an empty directory, put a batch of records with
//      every_commit durability, checkpoint, close cleanly, reopen, and
//      show the state came back (the reopen replays only the tail past
//      the checkpoint).
//   2. unclean shutdown: fork a child that writes MORE records and then
//      dies via _Exit mid-stream -- no close(), no final fsync, torn WAL
//      tail and all.  The parent reopens the directory and shows exactly
//      the acknowledged writes survived.
//   3. scan: ordered iteration over the recovered store.
//
// Run it twice: the second run recovers the first run's directory (delete
// ./durable_kv_data to start fresh).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "storage/durable_tree.hpp"

namespace {

// Fixed-size record: trivially copyable, compared by id only, so put()
// overwrites the value of an existing id.
struct record {
  long id;
  char value[24];
};
struct by_id {
  bool operator()(const record& a, const record& b) const {
    return a.id < b.id;
  }
};

record make_record(long id, const char* text) {
  record r{};
  r.id = id;
  std::snprintf(r.value, sizeof(r.value), "%s", text);
  return r;
}

using kv_store = lfst::storage::durable_tree<record, by_id>;

lfst::storage::durable_options store_options() {
  lfst::storage::durable_options o;
  o.wal.sync = lfst::storage::fsync_policy::every_commit;
  o.checkpoint_bytes = 1 << 20;
  return o;
}

void report(const char* when, const kv_store& store) {
  const auto& rs = store.recovery_stats();
  std::printf(
      "%-28s %5zu records  (checkpoint lsn %llu, replayed %llu records%s)\n",
      when, store.size(), static_cast<unsigned long long>(rs.cp_lsn),
      static_cast<unsigned long long>(rs.replayed),
      rs.torn_tail ? ", torn tail truncated" : "");
}

}  // namespace

int main() {
  const std::string dir = "durable_kv_data";

  // --- act 1: populate, checkpoint, clean shutdown, reopen ---------------
  {
    kv_store store(dir, store_options());
    report("open (initial)", store);
    for (long id = 0; id < 500; ++id) {
      store.put(make_record(id, ("v1-" + std::to_string(id)).c_str()));
    }
    store.checkpoint();
    for (long id = 500; id < 600; ++id) {
      store.put(make_record(id, ("v1-" + std::to_string(id)).c_str()));
    }
    store.close();
  }
  {
    kv_store store(dir, store_options());
    report("reopen after clean close", store);
    store.close();
  }

  // --- act 2: crash mid-write, recover -----------------------------------
  const pid_t pid = fork();
  if (pid == 0) {
    // Child: overwrite a range of values, then die without closing.  Each
    // put() returns only after its WAL record is fsynced (every_commit),
    // so everything the loop finished is durable by construction.
    kv_store store(dir, store_options());
    for (long id = 0; id < 250; ++id) {
      store.put(make_record(id, ("v2-" + std::to_string(id)).c_str()));
    }
    std::_Exit(1);  // simulated crash: no close(), no flush
  }
  int status = 0;
  waitpid(pid, &status, 0);

  {
    kv_store store(dir, store_options());
    report("reopen after crash", store);

    // --- act 3: ordered scan over the recovered store --------------------
    long v2_count = 0;
    long total = 0;
    store.tree().for_each([&](const record& r) {
      ++total;
      if (std::strncmp(r.value, "v2-", 3) == 0) ++v2_count;
    });
    std::printf("scan: %ld records, %ld carry the crashed writer's update\n",
                total, v2_count);
    std::printf("get(7):   %s\n",
                store.contains(record{7, {}}) ? "present" : "MISSING");
    std::printf("get(999): %s\n",
                store.contains(record{999, {}}) ? "PRESENT?!" : "absent");
    store.close();
  }
  std::puts("(delete ./durable_kv_data to start fresh)");
  return 0;
}

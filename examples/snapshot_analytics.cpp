// Snapshot analytics: weakly-consistent vs snapshot iteration, side by side.
//
// A metrics service keeps a live ordered set of latency samples while an
// analytics thread periodically computes aggregates over a scan.  Two ways
// to scan:
//
//   * the skip-tree's weakly-consistent for_each -- fast, but concurrent
//     updates may or may not be reflected mid-scan;
//   * the snap-tree's snapshot for_each -- every scan sees one frozen,
//     internally consistent state (the property Figure 10 measures).
//
// The discriminating experiment: a SINGLE writer mutates samples in lo/hi
// pairs (2i and 2i+1 added together, removed together, as two separate
// operations).  Any real, instantaneous state of the set therefore has AT
// MOST ONE torn pair -- the one the writer is mid-flip on.  A frozen
// snapshot is a real state, so a snap-tree scan can never observe two or
// more torn pairs.  A weakly-consistent scan is not a real state: it
// integrates over the whole scan duration and can observe many torn pairs
// at once.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "avltree/snap_tree.hpp"
#include "common/rng.hpp"
#include "skiptree/skip_tree.hpp"

namespace {

constexpr long kPairs = 50000;

template <typename Set>
void churn(Set& set, std::atomic<bool>& stop, std::uint64_t seed) {
  lfst::xoshiro256ss rng(seed);
  while (!stop.load(std::memory_order_acquire)) {
    const long i = static_cast<long>(rng.below(kPairs));
    if (rng.below(2) == 0) {
      set.add(2 * i);
      set.add(2 * i + 1);
    } else {
      set.remove(2 * i);
      set.remove(2 * i + 1);
    }
  }
}

struct scan_outcome {
  std::uint64_t scans = 0;
  std::uint64_t scans_with_multiple_tears = 0;
  std::uint64_t max_torn_pairs = 0;
  double elements_per_ms = 0.0;
};

template <typename Set>
scan_outcome run(const char* name, double duration_ms) {
  Set set;
  for (long i = 0; i < kPairs / 2; ++i) {
    set.add(2 * i);
    set.add(2 * i + 1);
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] { churn(set, stop, 0xfeed); });

  scan_outcome out;
  std::uint64_t visited = 0;
  std::vector<bool> lo_seen(static_cast<std::size_t>(kPairs));
  std::vector<bool> hi_seen(static_cast<std::size_t>(kPairs));
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    std::fill(lo_seen.begin(), lo_seen.end(), false);
    std::fill(hi_seen.begin(), hi_seen.end(), false);
    std::uint64_t n = 0;
    set.for_each([&](long k) {
      const auto i = static_cast<std::size_t>(k / 2);
      (k % 2 == 0 ? lo_seen : hi_seen)[i] = true;
      ++n;
    });
    visited += n;
    std::uint64_t torn = 0;
    for (long i = 0; i < kPairs; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (lo_seen[u] != hi_seen[u]) ++torn;
    }
    ++out.scans;
    out.max_torn_pairs = std::max(out.max_torn_pairs, torn);
    if (torn > 1) ++out.scans_with_multiple_tears;
    elapsed = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  } while (elapsed < duration_ms);
  stop.store(true, std::memory_order_release);
  writer.join();
  out.elements_per_ms = static_cast<double>(visited) / elapsed;

  std::printf("%-28s %5llu scans | torn pairs per scan: max %llu | scans "
              "with >1 torn: %llu | %8.0f elements/ms\n",
              name, static_cast<unsigned long long>(out.scans),
              static_cast<unsigned long long>(out.max_torn_pairs),
              static_cast<unsigned long long>(out.scans_with_multiple_tears),
              out.elements_per_ms);
  return out;
}

}  // namespace

int main() {
  std::printf("single writer flips lo/hi pairs; any REAL state has at most "
              "one torn pair.\nscanning each structure for 600 ms:\n\n");
  run<lfst::skiptree::skip_tree<long>>("skip-tree (weak iteration)", 600.0);
  run<lfst::avltree::snap_tree<long>>("snap-tree (snapshots)", 600.0);
  std::printf("\nexpected: the snap-tree never observes more than one torn "
              "pair (each scan is a\nfrozen real state); the weak iterator "
              "integrates over the scan and can observe many.\n");
  return 0;
}

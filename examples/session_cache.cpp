// Session cache with TTL expiry: the map and priority-queue layers working
// together.
//
// Web frontends keep a shared session table: lookups dominate (every
// request), inserts happen at login, and a reaper evicts expired sessions.
// The skip-tree map gives wait-free lookups over a large table; the
// priority queue orders sessions by expiry so the reaper pops only what is
// due, never scanning the table.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "skiptree/skip_tree_map.hpp"
#include "skiptree/skip_tree_pqueue.hpp"

namespace {

struct session {
  std::uint64_t user = 0;
  std::uint64_t expires_at = 0;  // logical clock tick
};

struct cache {
  lfst::skiptree::skip_tree_map<std::uint64_t, session> table;  // id -> session
  // (expiry tick, session id): unique pairs order the reaping schedule.
  lfst::skiptree::skip_tree_pqueue<std::pair<std::uint64_t, std::uint64_t>>
      expiry;

  void login(std::uint64_t id, std::uint64_t user, std::uint64_t deadline) {
    table.insert_or_assign(id, session{user, deadline});
    expiry.push({deadline, id});
  }

  bool authenticate(std::uint64_t id, std::uint64_t now) {
    session s;
    return table.get(id, s) && s.expires_at > now;
  }

  /// Evict everything due at or before `now`; returns evictions performed.
  std::size_t reap(std::uint64_t now) {
    std::size_t evicted = 0;
    std::pair<std::uint64_t, std::uint64_t> due;
    while (expiry.peek_min(due) && due.first <= now) {
      if (!expiry.try_pop_min(due)) continue;
      if (due.first > now) {  // popped a fresher deadline: requeue
        expiry.push(due);
        break;
      }
      // The session may have been refreshed (insert_or_assign with a later
      // deadline): only evict if the stored deadline is still the due one.
      session s;
      if (table.get(due.second, s) && s.expires_at == due.first) {
        table.erase(due.second);
        ++evicted;
      }
      // Stale queue entries for refreshed sessions are simply dropped.
    }
    return evicted;
  }
};

}  // namespace

int main() {
  cache c;
  std::atomic<std::uint64_t> clock_tick{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> auth_ok{0};
  std::atomic<std::uint64_t> auth_fail{0};
  std::atomic<std::uint64_t> evictions{0};

  constexpr int kFrontends = 4;
  constexpr std::uint64_t kIds = 50000;
  constexpr std::uint64_t kTtl = 200000;  // ticks = requests; ~1/6 of the run

  // Seed some sessions.
  for (std::uint64_t id = 0; id < kIds / 4; ++id) {
    c.login(id, id * 31, kTtl / 2 + id % kTtl);
  }

  // The reaper evicts whatever has come due.  The logical clock is driven
  // by request traffic (each request is one tick), so the demo behaves the
  // same whether or not the reaper thread gets generous scheduling.
  std::thread reaper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      evictions.fetch_add(c.reap(clock_tick.load(std::memory_order_relaxed)));
      std::this_thread::yield();
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> frontends;
  for (int f = 0; f < kFrontends; ++f) {
    frontends.emplace_back([&, f] {
      lfst::xoshiro256ss rng(lfst::thread_seed(17, static_cast<std::uint64_t>(f)));
      for (int i = 0; i < 300000; ++i) {
        const std::uint64_t id = rng.below(kIds);
        const std::uint64_t now =
            clock_tick.fetch_add(1, std::memory_order_relaxed);
        if (rng.below(10) == 0) {
          c.login(id, id * 31, now + kTtl);  // login / refresh
        } else {
          if (c.authenticate(id, now)) {
            auth_ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            auth_fail.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : frontends) th.join();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  stop.store(true, std::memory_order_release);
  reaper.join();

  const std::uint64_t requests = auth_ok.load() + auth_fail.load();
  std::printf("%d frontends, %.0f ms, %.0f requests/ms\n", kFrontends, ms,
              static_cast<double>(requests) / ms);
  std::printf("authenticated: %llu ok, %llu expired/unknown\n",
              static_cast<unsigned long long>(auth_ok.load()),
              static_cast<unsigned long long>(auth_fail.load()));
  std::printf("reaper evicted %llu sessions; %zu live, %zu scheduled "
              "(clock reached %llu)\n",
              static_cast<unsigned long long>(evictions.load()),
              c.table.size(), c.expiry.size(),
              static_cast<unsigned long long>(clock_tick.load()));
  // Final sweep: advance far past every deadline; everything must drain.
  const std::size_t final_sweep = c.reap(clock_tick.load() + 10 * kTtl);
  std::printf("final sweep evicted %zu; %zu live, %zu scheduled\n",
              final_sweep, c.table.size(), c.expiry.size());
  return 0;
}

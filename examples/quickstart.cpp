// Quickstart: the lock-free skip-tree public API in one file.
//
//   build/examples/quickstart
//
// Demonstrates construction, the three core operations, iteration, options,
// and concurrent use from several threads.
#include <cstdio>
#include <thread>
#include <vector>

#include "skiptree/skip_tree.hpp"

int main() {
  // A concurrent ordered set of ints with the paper's tuning (q = 1/32).
  lfst::skiptree::skip_tree_options options;
  options.q_log2 = 5;
  lfst::skiptree::skip_tree<int> set(options);

  // add() returns false for duplicates; remove() returns false for misses;
  // contains() is wait-free.
  set.add(30);
  set.add(10);
  set.add(20);
  std::printf("add(10) again -> %s\n", set.add(10) ? "true" : "false");
  std::printf("contains(20)  -> %s\n", set.contains(20) ? "true" : "false");
  set.remove(20);
  std::printf("contains(20) after remove -> %s\n",
              set.contains(20) ? "true" : "false");

  // Ascending, weakly-consistent iteration.
  std::printf("members:");
  set.for_each([](int k) { std::printf(" %d", k); });
  std::printf("\n");

  // Concurrent use needs no external synchronization; operations are
  // lock-free (add/remove) and wait-free (contains).
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&set, t] {
      for (int i = 0; i < 25000; ++i) {
        set.add(t * 25000 + i);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::printf("after 4 threads x 25k inserts: size = %zu, height = %d\n",
              set.size(), set.height());

  // Early-exit scans: find the first member above a threshold.
  int first_above = -1;
  set.for_each_while([&](int k) {
    if (k > 99990) {
      first_above = k;
      return false;  // stop
    }
    return true;
  });
  std::printf("first member > 99990: %d\n", first_above);
  return 0;
}

// Telemetry de-duplication: the paper's motivating workload shape.
//
// "a lock-free multiway search tree algorithm for concurrent applications
//  with large working set sizes" (abstract) -- a membership structure much
//  bigger than cache, hit mostly by reads.
//
// Scenario: N ingest threads receive telemetry events; event ids repeat
// (retransmissions, duplicated shards).  Each thread asks the shared
// skip-tree whether the id was already seen (the 90% contains), records new
// ids (the 9% add), and an expiry thread retires old ids (the 1% remove).
// The run reports per-thread throughput and the duplicate ratio detected.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "skiptree/skip_tree.hpp"

namespace {

struct ingest_stats {
  std::uint64_t events = 0;
  std::uint64_t duplicates = 0;
};

}  // namespace

int main() {
  constexpr int kIngestThreads = 4;
  constexpr std::uint64_t kIdSpace = std::uint64_t{1} << 26;  // >> cache
  constexpr std::uint64_t kEventsPerThread = 400000;

  lfst::skiptree::skip_tree<std::uint64_t> seen;

  // Warm the working set: a backlog of already-seen ids.
  {
    lfst::xoshiro256ss rng(1);
    for (int i = 0; i < 500000; ++i) seen.add(rng.below(kIdSpace));
    std::printf("backlog: %zu ids resident\n", seen.size());
  }

  std::vector<ingest_stats> stats(kIngestThreads);
  std::atomic<bool> stop_expiry{false};

  // Expiry thread: a trickle of removes keeps churn realistic.
  std::thread expiry([&] {
    lfst::xoshiro256ss rng(99);
    while (!stop_expiry.load(std::memory_order_acquire)) {
      for (int i = 0; i < 1000; ++i) seen.remove(rng.below(kIdSpace));
      std::this_thread::yield();
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ingest;
  for (int t = 0; t < kIngestThreads; ++t) {
    ingest.emplace_back([&, t] {
      lfst::xoshiro256ss rng(lfst::thread_seed(7, static_cast<std::uint64_t>(t)));
      ingest_stats local;
      for (std::uint64_t i = 0; i < kEventsPerThread; ++i) {
        // Zipf-ish skew: 1 in 8 events re-uses a "hot" recent id.
        const std::uint64_t id = (rng.below(8) == 0)
                                     ? rng.below(1 << 16)
                                     : rng.below(kIdSpace);
        ++local.events;
        if (seen.contains(id)) {
          ++local.duplicates;  // drop the duplicate
        } else {
          seen.add(id);  // first sighting: record it
        }
      }
      stats[static_cast<std::size_t>(t)] = local;
    });
  }
  for (auto& th : ingest) th.join();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  stop_expiry.store(true, std::memory_order_release);
  expiry.join();

  std::uint64_t events = 0;
  std::uint64_t dups = 0;
  for (const auto& s : stats) {
    events += s.events;
    dups += s.duplicates;
  }
  std::printf("%d ingest threads processed %llu events in %.0f ms "
              "(%.0f events/ms)\n",
              kIngestThreads, static_cast<unsigned long long>(events), ms,
              static_cast<double>(events) / ms);
  std::printf("duplicates dropped: %llu (%.1f%%)\n",
              static_cast<unsigned long long>(dups),
              100.0 * static_cast<double>(dups) / static_cast<double>(events));
  std::printf("resident ids: %zu, tree height: %d\n", seen.size(),
              seen.height());
  return 0;
}

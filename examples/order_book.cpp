// Limit-order-book price index: heavy add/remove churn plus ordered scans.
//
// A matching engine needs the set of active price levels on each side of
// the book, ordered, under concurrent mutation: makers add/cancel levels
// while the matcher repeatedly reads the best bid/ask and scans the top of
// the book.  The skip-tree's ordered iteration with early exit
// (for_each_while) makes best-price queries cheap, and its lock-free
// mutations keep makers from stalling the matcher.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "skiptree/skip_tree.hpp"

namespace {

// Prices in ticks.  Bids are stored negated so that "best bid" (highest
// price) is the first element in ascending order, symmetrical with asks.
using price_t = long;

struct book {
  lfst::skiptree::skip_tree<price_t> bids;  // negated prices
  lfst::skiptree::skip_tree<price_t> asks;

  void add_bid(price_t p) { bids.add(-p); }
  void cancel_bid(price_t p) { bids.remove(-p); }
  void add_ask(price_t p) { asks.add(p); }
  void cancel_ask(price_t p) { asks.remove(p); }

  bool best_bid(price_t& out) const {
    bool found = false;
    bids.for_each_while([&](price_t p) {
      out = -p;
      found = true;
      return false;
    });
    return found;
  }

  bool best_ask(price_t& out) const {
    bool found = false;
    asks.for_each_while([&](price_t p) {
      out = p;
      found = true;
      return false;
    });
    return found;
  }

  /// Sum of the top `depth` ask levels (a "sweep cost" estimate).
  price_t sweep_cost(int depth) const {
    price_t sum = 0;
    int n = 0;
    asks.for_each_while([&](price_t p) {
      sum += p;
      return ++n < depth;
    });
    return sum;
  }
};

}  // namespace

int main() {
  constexpr price_t kMid = 1000000;
  constexpr price_t kBand = 5000;  // active levels live in [mid-band, mid+band]
  constexpr int kMakers = 4;
  constexpr int kOpsPerMaker = 300000;

  book bk;
  // Seed both sides.
  for (price_t p = 1; p <= 200; ++p) {
    bk.add_bid(kMid - p);
    bk.add_ask(kMid + p);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> quotes{0};
  std::atomic<std::uint64_t> crossed{0};

  // The matcher: continuously reads the touch and the top-of-book sweep.
  std::thread matcher([&] {
    std::uint64_t local_quotes = 0;
    std::uint64_t local_crossed = 0;
    while (!stop.load(std::memory_order_acquire)) {
      price_t bid = 0;
      price_t ask = 0;
      if (bk.best_bid(bid) && bk.best_ask(ask)) {
        ++local_quotes;
        if (bid >= ask) ++local_crossed;  // transient, makers race
        bk.sweep_cost(16);
      }
    }
    quotes.store(local_quotes);
    crossed.store(local_crossed);
  });

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> makers;
  for (int m = 0; m < kMakers; ++m) {
    makers.emplace_back([&, m] {
      lfst::xoshiro256ss rng(lfst::thread_seed(33, static_cast<std::uint64_t>(m)));
      for (int i = 0; i < kOpsPerMaker; ++i) {
        const price_t off = static_cast<price_t>(1 + rng.below(kBand));
        switch (rng.below(4)) {
          case 0: bk.add_bid(kMid - off); break;
          case 1: bk.cancel_bid(kMid - off); break;
          case 2: bk.add_ask(kMid + off); break;
          default: bk.cancel_ask(kMid + off); break;
        }
      }
    });
  }
  for (auto& th : makers) th.join();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  stop.store(true, std::memory_order_release);
  matcher.join();

  price_t bid = 0;
  price_t ask = 0;
  bk.best_bid(bid);
  bk.best_ask(ask);
  std::printf("%d makers, %d ops each, in %.0f ms (%.0f maker-ops/ms)\n",
              kMakers, kOpsPerMaker, ms,
              kMakers * static_cast<double>(kOpsPerMaker) / ms);
  std::printf("final touch: bid %ld / ask %ld (spread %ld ticks)\n", bid, ask,
              ask - bid);
  std::printf("matcher read %llu quotes concurrently (%llu transiently "
              "crossed)\n",
              static_cast<unsigned long long>(quotes.load()),
              static_cast<unsigned long long>(crossed.load()));
  std::printf("levels resident: %zu bids, %zu asks\n", bk.bids.size(),
              bk.asks.size());
  return 0;
}

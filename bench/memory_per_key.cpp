// Structural census: memory per key across the four structures.
//
// The Figure 9 locality gap has a simple mechanism: how many bytes -- and
// therefore cache lines -- must a traversal touch per key?  This harness
// fills each structure with the same random key set and reports bytes/key
// of reachable heap (node headers, towers, payload blocks).  The skip-tree
// amortizes its 16-byte node header over 1/q keys; the skip-list pays a
// full node plus an expected 1/(1-q) tower slots per key.
#include <cstdio>
#include <memory>
#include <string>

#include "avltree/opt_tree.hpp"
#include "bench_common.hpp"
#include "blinktree/blink_tree.hpp"
#include "common/rng.hpp"
#include "skiplist/skip_list.hpp"
#include "skiptree/skip_tree.hpp"
#include "skiptree/validate.hpp"

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  const auto cfg = lfst::bench::bench_config::from_env();
  lfst::bench::print_header("Structural census: memory per key", cfg);

  const std::size_t n = std::max<std::size_t>(cfg.ops, 200000);
  std::printf("filling each structure with %zu random 8-byte keys\n\n", n);

  auto fill = [n](auto& set) {
    lfst::xoshiro256ss rng(0xfee1);
    for (std::size_t i = 0; i < n; ++i) {
      set.add(static_cast<long>(rng.below(std::uint64_t{1} << 40)));
    }
    return set.size();
  };

  lfst::workload::table tab(
      {"structure", "keys", "bytes/key", "total MiB", "notes"});

  {
    lfst::skiptree::skip_tree_options o;
    o.q_log2 = 5;
    lfst::skiptree::skip_tree<long> t(o);
    const std::size_t keys = fill(t);
    const std::size_t bytes =
        lfst::skiptree::skip_tree_inspector<long>(t).live_bytes();
    tab.add_row({"skip-tree q=1/32", std::to_string(keys),
                 lfst::workload::table::fmt(
                     static_cast<double>(bytes) / static_cast<double>(keys), 1),
                 lfst::workload::table::fmt(
                     static_cast<double>(bytes) / (1024.0 * 1024.0), 1),
                 "header amortized over ~32 keys"});
  }
  {
    lfst::skiplist::skip_list<long> t;
    const std::size_t keys = fill(t);
    const std::size_t bytes = t.memory_footprint();
    tab.add_row({"skip-list q=1/4", std::to_string(keys),
                 lfst::workload::table::fmt(
                     static_cast<double>(bytes) / static_cast<double>(keys), 1),
                 lfst::workload::table::fmt(
                     static_cast<double>(bytes) / (1024.0 * 1024.0), 1),
                 "one node + tower per key"});
  }
  {
    lfst::avltree::opt_tree<long> t;
    const std::size_t keys = fill(t);
    const std::size_t bytes = t.memory_footprint();
    tab.add_row({"opt-tree", std::to_string(keys),
                 lfst::workload::table::fmt(
                     static_cast<double>(bytes) / static_cast<double>(keys), 1),
                 lfst::workload::table::fmt(
                     static_cast<double>(bytes) / (1024.0 * 1024.0), 1),
                 "fat node: version/lock/parent"});
  }
  {
    lfst::blinktree::blink_tree_options o;
    o.min_node_size = 128;
    lfst::blinktree::blink_tree<long> t(o);
    const std::size_t keys = fill(t);
    const std::size_t bytes = t.memory_footprint();
    tab.add_row({"b-link-tree M=128", std::to_string(keys),
                 lfst::workload::table::fmt(
                     static_cast<double>(bytes) / static_cast<double>(keys), 1),
                 lfst::workload::table::fmt(
                     static_cast<double>(bytes) / (1024.0 * 1024.0), 1),
                 "vectors reserved to 2M"});
  }
  tab.print();
  std::printf("\nexpected shape: skip-tree and b-link (packed nodes) well "
              "below skip-list and opt-tree\n(node-per-key), which is the "
              "mechanism behind the Figure 9 large-working-set gap.\n");
  return 0;
}

// Structural census: how q shapes the tree.
//
// The skip-tree's cache-consciousness comes from packing an expected 1/q
// elements per node (Sec. III-C: heights are geometric with failure rate
// q).  This harness builds trees of fixed size across q values and reports
// the realized average leaf width, node counts per level, tree height, and
// the resulting memory-per-key -- the structural mechanism behind the
// Figure 9 locality gap.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "skiptree/skip_tree.hpp"
#include "skiptree/validate.hpp"

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::bench_json_reporter bench_json("node_width", argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  const auto cfg = lfst::bench::bench_config::from_env();
  lfst::bench::print_header("Structural census: node width vs q", cfg);

  const std::size_t n = std::max<std::size_t>(cfg.ops, 100000);
  std::printf("tree size: %zu random keys\n\n", n);

  lfst::workload::table tab({"q", "height", "leaf nodes", "avg leaf width",
                             "routing nodes", "expected width (1/q)"});
  for (int q_log2 = 1; q_log2 <= 7; ++q_log2) {
    lfst::skiptree::skip_tree_options o;
    o.q_log2 = q_log2;
    lfst::skiptree::skip_tree<long> t(o);
    lfst::xoshiro256ss rng(0x717 + static_cast<std::uint64_t>(q_log2));
    for (std::size_t i = 0; i < n; ++i) {
      t.add(static_cast<long>(rng.below(std::uint64_t{1} << 40)));
    }
    lfst::skiptree::skip_tree_inspector<long> insp(t);
    const auto rep = insp.validate();
    if (!rep.ok) {
      std::printf("INVALID structure at q=1/%d: %s\n", 1 << q_log2,
                  rep.to_string().c_str());
      return 1;
    }
    const std::size_t leaves = rep.nodes_per_level[0];
    std::size_t routing = 0;
    for (std::size_t l = 1; l < rep.nodes_per_level.size(); ++l) {
      routing += rep.nodes_per_level[l];
    }
    const double avg_width = static_cast<double>(t.size()) /
                             static_cast<double>(leaves);
    // Structural census, not throughput: the tracked scalar is the realized
    // average leaf width, with the per-level shape riding along in "extra".
    bench_json.record("node_width/q=1-" + std::to_string(1 << q_log2), 1,
                      lfst::summary::of({avg_width}),
                      {{"height", static_cast<double>(t.height())},
                       {"leaf_nodes", static_cast<double>(leaves)},
                       {"routing_nodes", static_cast<double>(routing)}});
    tab.add_row({"1/" + std::to_string(1 << q_log2),
                 std::to_string(t.height()), std::to_string(leaves),
                 lfst::workload::table::fmt(avg_width, 1),
                 std::to_string(routing), std::to_string(1 << q_log2)});
  }
  tab.print();
  std::printf("\nexpected shape: realized average leaf width tracks 1/q; "
              "height shrinks as q falls.\n");
  return 0;
}

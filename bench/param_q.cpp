// Supplemental-material reproduction: skip-tree parameter sweep over q, the
// failure rate of the geometric height distribution (expected node width is
// 1/q).  The paper swept q per scenario and selected q = 1/32 as the best
// average performer; this harness re-runs that sweep for both operation
// mixes at the medium working-set size and reports where the optimum lands.
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "skiptree/skip_tree.hpp"

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  using lfst::bench::bench_config;
  using lfst::workload::scenario;
  const bench_config cfg = bench_config::from_env();
  lfst::bench::print_header("Supplemental: skip-tree q parameter sweep", cfg);

  const int threads = cfg.threads.back();
  std::printf("threads=%d, max size %s\n\n", threads,
              lfst::bench::range_name(lfst::workload::kRangeMedium).c_str());

  lfst::workload::table tab({"q", "90c/9a/1r", "33c/33a/33r", "(ops/ms)"});
  double best_mean = 0.0;
  std::string best_q;
  for (int q_log2 = 1; q_log2 <= 7; ++q_log2) {
    std::vector<std::string> row{"1/" + std::to_string(1 << q_log2)};
    double combined = 0.0;
    for (const auto& m :
         {lfst::workload::kReadDominated, lfst::workload::kWriteDominated}) {
      scenario sc;
      sc.operations = m;
      sc.key_range = lfst::workload::kRangeMedium;
      sc.total_ops = cfg.ops;
      sc.threads = threads;
      sc.trials = cfg.trials;
      sc.seed = 0x9 + static_cast<std::uint64_t>(q_log2);
      const auto s = lfst::workload::run_scenario(sc, [q_log2] {
        lfst::skiptree::skip_tree_options o;
        o.q_log2 = q_log2;
        return std::make_unique<lfst::skiptree::skip_tree<long>>(o);
      });
      combined += s.mean;
      row.push_back(lfst::workload::table::fmt(s.mean, 0) + " +/- " +
                    lfst::workload::table::fmt(s.stddev, 0));
    }
    if (combined > best_mean) {
      best_mean = combined;
      best_q = row[0];
    }
    row.emplace_back("");
    tab.add_row(row);
  }
  tab.print();
  std::printf("\nbest average q this run: %s (paper: q = 1/32)\n",
              best_q.c_str());
  return 0;
}

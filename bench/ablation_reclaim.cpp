// Ablation B: the price of safe memory reclamation.
//
// The paper's JVM implementation pays its reclamation cost inside the
// garbage collector, invisibly folded into the throughput numbers.  This
// port makes the cost explicit: the same workload runs with epoch-based
// reclamation (the default), and with the leaky policy (retired payloads
// are dropped -- an upper bound on reclamation-free performance at the cost
// of unbounded memory).  The gap bounds what the GC substitution costs.
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "reclaim/leaky.hpp"
#include "skiplist/skip_list.hpp"
#include "skiptree/skip_tree.hpp"

namespace {

using key = long;
using lfst::bench::bench_config;
using lfst::workload::scenario;

template <typename Factory>
double throughput(const scenario& sc, Factory&& f) {
  return lfst::workload::run_scenario(sc, std::forward<Factory>(f)).mean;
}

}  // namespace

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  const bench_config cfg = bench_config::from_env();
  lfst::bench::print_header("Ablation B: reclamation policy (EBR vs leaky)",
                            cfg);

  lfst::workload::table tab({"structure / mix", "EBR (ops/ms)",
                             "leaky (ops/ms)", "EBR cost"});
  for (const auto& m :
       {lfst::workload::kReadDominated, lfst::workload::kWriteDominated}) {
    scenario sc;
    sc.operations = m;
    sc.key_range = lfst::workload::kRangeMedium;
    sc.total_ops = cfg.ops;
    sc.threads = cfg.threads.back();
    sc.trials = cfg.trials;
    sc.seed = 0x8ec1;

    {
      const double ebr = throughput(sc, [] {
        lfst::skiptree::skip_tree_options o;
        o.q_log2 = 5;
        return std::make_unique<lfst::skiptree::skip_tree<key>>(o);
      });
      const double leaky = throughput(sc, [] {
        lfst::skiptree::skip_tree_options o;
        o.q_log2 = 5;
        return std::make_unique<lfst::skiptree::skip_tree<
            key, std::less<key>, lfst::reclaim::leaky_policy>>(o);
      });
      tab.add_row({std::string("skip-tree ") + lfst::bench::mix_name(m),
                   lfst::workload::table::fmt(ebr, 0),
                   lfst::workload::table::fmt(leaky, 0),
                   lfst::workload::table::fmt((1.0 - ebr / leaky) * 100.0, 1) +
                       "%"});
    }
    {
      const double ebr = throughput(sc, [] {
        return std::make_unique<lfst::skiplist::skip_list<key>>();
      });
      const double leaky = throughput(sc, [] {
        return std::make_unique<lfst::skiplist::skip_list<
            key, std::less<key>, lfst::reclaim::leaky_policy>>();
      });
      tab.add_row({std::string("skip-list ") + lfst::bench::mix_name(m),
                   lfst::workload::table::fmt(ebr, 0),
                   lfst::workload::table::fmt(leaky, 0),
                   lfst::workload::table::fmt((1.0 - ebr / leaky) * 100.0, 1) +
                       "%"});
    }
  }
  tab.print();
  std::printf("\nexpected shape: single-digit percent cost on the "
              "read-dominated mix\n(guards dominate), larger on the "
              "write-dominated mix (retire traffic).\n");
  return 0;
}

// Ablation A: what does online node compaction buy?
//
// The paper's central structural claim (Sec. III-D) is that mutations may
// degrade the tree -- empty nodes, suboptimal references -- and that lazy
// compaction piggybacked on remove() restores optimal paths.  This harness
// runs a remove-heavy churn with compaction enabled vs disabled and reports
// both throughput and the structural census (nodes, empties, suboptimal
// references) afterwards, plus the read throughput over the degraded vs
// compacted structure.
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "skiptree/skip_tree.hpp"
#include "skiptree/validate.hpp"

namespace {

using key = long;
using lfst::bench::bench_config;
using lfst::workload::scenario;

struct outcome {
  double churn_ops_per_ms = 0.0;
  double read_ops_per_ms = 0.0;
  lfst::skiptree::validation_report census;
};

outcome run(bool compaction, const bench_config& cfg) {
  lfst::skiptree::skip_tree_options o;
  o.q_log2 = 3;  // narrower nodes -> more structure to degrade
  o.compaction = compaction;
  auto set = std::make_unique<lfst::skiptree::skip_tree<key>>(o);

  // Phase 1: remove-heavy churn (20% contains, 20% add, 60% remove).
  scenario churn;
  churn.operations = lfst::workload::mix{20, 20, 60};
  churn.key_range = 1 << 16;
  churn.total_ops = cfg.ops;
  churn.threads = cfg.threads.back();
  churn.seed = 0xab1a;
  std::vector<std::vector<lfst::workload::op>> streams;
  for (int tid = 0; tid < churn.threads; ++tid) {
    streams.push_back(lfst::workload::make_op_stream(churn, churn.seed, tid));
  }
  lfst::workload::preload(*set, streams);

  outcome out;
  out.churn_ops_per_ms =
      lfst::workload::execute_trial(*set, streams).ops_per_ms;

  // Phase 2: read throughput over whatever structure the churn left.
  scenario reads;
  reads.operations = lfst::workload::mix{100, 0, 0};
  reads.key_range = churn.key_range;
  reads.total_ops = cfg.ops;
  reads.threads = churn.threads;
  reads.seed = 0xab1b;
  std::vector<std::vector<lfst::workload::op>> read_streams;
  for (int tid = 0; tid < reads.threads; ++tid) {
    read_streams.push_back(
        lfst::workload::make_op_stream(reads, reads.seed, tid));
  }
  out.read_ops_per_ms =
      lfst::workload::execute_trial(*set, read_streams).ops_per_ms;

  out.census = lfst::skiptree::skip_tree_inspector<key>(*set).validate();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  const bench_config cfg = bench_config::from_env();
  lfst::bench::print_header("Ablation A: online node compaction on/off", cfg);

  const outcome with = run(/*compaction=*/true, cfg);
  const outcome without = run(/*compaction=*/false, cfg);

  lfst::workload::table tab({"metric", "compaction ON", "compaction OFF"});
  tab.add_row({"churn throughput (ops/ms)",
               lfst::workload::table::fmt(with.churn_ops_per_ms, 0),
               lfst::workload::table::fmt(without.churn_ops_per_ms, 0)});
  tab.add_row({"post-churn read throughput (ops/ms)",
               lfst::workload::table::fmt(with.read_ops_per_ms, 0),
               lfst::workload::table::fmt(without.read_ops_per_ms, 0)});
  tab.add_row({"total nodes", std::to_string(with.census.total_nodes),
               std::to_string(without.census.total_nodes)});
  tab.add_row({"empty nodes", std::to_string(with.census.empty_nodes),
               std::to_string(without.census.empty_nodes)});
  tab.add_row({"suboptimal references",
               std::to_string(with.census.suboptimal_refs),
               std::to_string(without.census.suboptimal_refs)});
  tab.add_row({"structure valid", with.census.ok ? "yes" : "NO",
               without.census.ok ? "yes" : "NO"});
  tab.print();
  std::printf("\nexpected shape: OFF leaves more empty nodes and suboptimal "
              "references;\nboth remain structurally valid (relaxed "
              "optimality never breaks reachability).\n");
  return 0;
}

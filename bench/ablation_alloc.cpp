// Ablation D: the price of hot-path allocation.
//
// Every add/remove on the skip-tree replaces an immutable payload, so a
// malloc/free pair rides on every mutation (deferred through the
// reclamation grace period).  The paper's JVM artifact hides this cost in
// the garbage collector's bump allocator; this port makes it a policy.
// The same Fig. 9 mixed workload runs twice per structure: once on the
// pooled slab allocator (the default), once on the aligned global heap
// (`new_delete_policy`).  The pool's hit-rate counters are printed so the
// throughput delta can be attributed to actual block reuse.
#include <cstdio>
#include <memory>
#include <string>

#include "alloc/pool.hpp"
#include "bench_common.hpp"
#include "skiplist/skip_list.hpp"
#include "skiptree/skip_tree.hpp"

namespace {

using key = long;
using lfst::bench::bench_config;
using lfst::workload::scenario;

template <typename Factory>
double throughput(const scenario& sc, Factory&& f) {
  return lfst::workload::run_scenario(sc, std::forward<Factory>(f)).mean;
}

}  // namespace

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  const bench_config cfg = bench_config::from_env();
  lfst::bench::print_header(
      "Ablation D: allocation policy (pooled slabs vs global heap)", cfg);

  lfst::workload::table tab({"structure / mix", "pooled (ops/ms)",
                             "new/delete (ops/ms)", "pool gain"});
  for (const auto& m :
       {lfst::workload::kReadDominated, lfst::workload::kWriteDominated}) {
    scenario sc;
    sc.operations = m;
    sc.key_range = lfst::workload::kRangeMedium;
    sc.total_ops = cfg.ops;
    sc.threads = cfg.threads.back();
    sc.trials = cfg.trials;
    sc.seed = 0x9a7c;

    {
      const double pooled = throughput(sc, [] {
        lfst::skiptree::skip_tree_options o;
        o.q_log2 = 5;
        return std::make_unique<lfst::skiptree::skip_tree<key>>(o);
      });
      const double plain = throughput(sc, [] {
        lfst::skiptree::skip_tree_options o;
        o.q_log2 = 5;
        return std::make_unique<lfst::skiptree::skip_tree<
            key, std::less<key>, lfst::reclaim::ebr_policy,
            lfst::alloc::new_delete_policy>>(o);
      });
      tab.add_row({std::string("skip-tree ") + lfst::bench::mix_name(m),
                   lfst::workload::table::fmt(pooled, 0),
                   lfst::workload::table::fmt(plain, 0),
                   lfst::workload::table::fmt((pooled / plain - 1.0) * 100.0,
                                              1) +
                       "%"});
    }
    {
      const double pooled = throughput(sc, [] {
        return std::make_unique<lfst::skiplist::skip_list<key>>();
      });
      const double plain = throughput(sc, [] {
        return std::make_unique<lfst::skiplist::skip_list<
            key, std::less<key>, lfst::reclaim::ebr_policy,
            lfst::alloc::new_delete_policy>>();
      });
      tab.add_row({std::string("skip-list ") + lfst::bench::mix_name(m),
                   lfst::workload::table::fmt(pooled, 0),
                   lfst::workload::table::fmt(plain, 0),
                   lfst::workload::table::fmt((pooled / plain - 1.0) * 100.0,
                                              1) +
                       "%"});
    }
  }
  tab.print();

  const lfst::alloc::alloc_counters c = lfst::alloc::pool_policy::counters();
  std::printf(
      "\npool counters: %llu allocations, %llu reused (%.1f%% hit rate), "
      "%llu slab carves, %llu heap fallbacks, %llu deallocations\n",
      static_cast<unsigned long long>(c.allocations),
      static_cast<unsigned long long>(c.pool_hits), c.hit_rate() * 100.0,
      static_cast<unsigned long long>(c.slab_carves),
      static_cast<unsigned long long>(c.fallbacks),
      static_cast<unsigned long long>(c.deallocations));
  std::printf(
      "expected shape: pooled at least matches the global heap on the "
      "read-dominated\nmix and pulls ahead on the write-dominated mix, with "
      "the hit rate climbing\ntoward 100%% as the steady state recycles "
      "every retired payload.\n");
  return 0;
}

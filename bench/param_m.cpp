// Supplemental-material reproduction: B-link tree parameter sweep over M,
// the minimum node size (nodes hold at most 2M keys).  The paper selected
// M = 128 as the best average performer.
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "blinktree/blink_tree.hpp"

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::bench_json_reporter bench_json("param_m", argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  using lfst::bench::bench_config;
  using lfst::workload::scenario;
  const bench_config cfg = bench_config::from_env();
  lfst::bench::print_header("Supplemental: B-link tree M parameter sweep",
                            cfg);

  const int threads = cfg.threads.back();
  std::printf("threads=%d, max size %s\n\n", threads,
              lfst::bench::range_name(lfst::workload::kRangeMedium).c_str());

  lfst::workload::table tab({"M", "90c/9a/1r", "33c/33a/33r", "(ops/ms)"});
  double best_mean = 0.0;
  std::string best_m;
  for (const std::size_t m_param : {16u, 32u, 64u, 128u, 256u}) {
    std::vector<std::string> row{std::to_string(m_param)};
    double combined = 0.0;
    for (const auto& m :
         {lfst::workload::kReadDominated, lfst::workload::kWriteDominated}) {
      scenario sc;
      sc.operations = m;
      sc.key_range = lfst::workload::kRangeMedium;
      sc.total_ops = cfg.ops;
      sc.threads = threads;
      sc.trials = cfg.trials;
      sc.seed = 0xb + static_cast<std::uint64_t>(m_param);
      const auto s = lfst::workload::run_scenario(sc, [m_param] {
        lfst::blinktree::blink_tree_options o;
        o.min_node_size = m_param;
        return std::make_unique<lfst::blinktree::blink_tree<long>>(o);
      });
      bench_json.record("param_m/M=" + std::to_string(m_param) + "/" +
                            std::to_string(m.contains_pct) + "c" +
                            std::to_string(m.add_pct) + "a" +
                            std::to_string(m.remove_pct) + "r",
                        threads, s);
      combined += s.mean;
      row.push_back(lfst::workload::table::fmt(s.mean, 0) + " +/- " +
                    lfst::workload::table::fmt(s.stddev, 0));
    }
    if (combined > best_mean) {
      best_mean = combined;
      best_m = row[0];
    }
    row.emplace_back("");
    tab.add_row(row);
  }
  tab.print();
  std::printf("\nbest average M this run: %s (paper: M = 128)\n",
              best_m.c_str());
  return 0;
}

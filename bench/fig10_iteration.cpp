// Figure 10 reproduction: sequential-iteration throughput of a single
// thread (elements/ms) while 0..N contending threads run the 90/9/1 mix
// over the largest working set.
//
// As in the paper, the opt-tree is replaced by the snap-tree for this
// benchmark (snapshot iteration is the snap-tree's raison d'etre); the
// skip-tree and skip-list iterate their bottom level weakly-consistently,
// and the B-link tree takes per-leaf read locks.
#include <memory>
#include <string>
#include <vector>

#include "avltree/snap_tree.hpp"
#include "bench_common.hpp"
#include "blinktree/blink_tree.hpp"
#include "skiplist/skip_list.hpp"
#include "skiptree/skip_tree.hpp"

namespace {

using lfst::bench::bench_config;
using lfst::workload::iteration_result;
using lfst::workload::iteration_scenario;

using key = long;

template <typename Set>
double run_one(const iteration_scenario& sc) {
  auto set = std::make_unique<Set>();
  return lfst::workload::run_iteration_trial(*set, sc).elements_per_ms;
}

}  // namespace

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  const bench_config cfg = bench_config::from_env();
  lfst::bench::print_header(
      "Figure 10: single-thread iteration throughput under contention", cfg);

  const std::size_t preload =
      lfst::bench::env_size("LFST_BENCH_PRELOAD", 200000);
  const double duration_ms = static_cast<double>(
      lfst::bench::env_size("LFST_BENCH_ITER_MS", 400));
  std::printf("preload=%zu keys, %0.0f ms per cell "
              "(LFST_BENCH_PRELOAD / LFST_BENCH_ITER_MS)\n\n",
              preload, duration_ms);

  std::vector<int> contenders{0};
  for (int t : cfg.threads) contenders.push_back(t);

  lfst::workload::table tab({"contenders", "skip-tree", "skip-list",
                             "snap-tree", "b-link-tree", "(elements/ms)"});
  for (const int n : contenders) {
    iteration_scenario sc;
    sc.operations = lfst::workload::kReadDominated;
    sc.key_range = lfst::workload::kRangeLarge;
    sc.preload_keys = preload;
    sc.contenders = n;
    sc.duration_ms = duration_ms;
    sc.seed = 0xf16 + static_cast<std::uint64_t>(n);

    lfst::skiptree::skip_tree_options sto;
    sto.q_log2 = 5;
    lfst::blinktree::blink_tree_options bto;
    bto.min_node_size = 128;

    std::vector<std::string> row{std::to_string(n)};
    {
      lfst::skiptree::skip_tree<key> set(sto);
      row.push_back(lfst::workload::table::fmt(
          lfst::workload::run_iteration_trial(set, sc).elements_per_ms, 0));
    }
    {
      lfst::skiplist::skip_list<key> set;
      row.push_back(lfst::workload::table::fmt(
          lfst::workload::run_iteration_trial(set, sc).elements_per_ms, 0));
    }
    {
      lfst::avltree::snap_tree<key> set;
      row.push_back(lfst::workload::table::fmt(
          lfst::workload::run_iteration_trial(set, sc).elements_per_ms, 0));
    }
    {
      lfst::blinktree::blink_tree<key> set(bto);
      row.push_back(lfst::workload::table::fmt(
          lfst::workload::run_iteration_trial(set, sc).elements_per_ms, 0));
    }
    row.emplace_back("");
    tab.add_row(row);
  }
  tab.print();
  std::printf("\npaper shape: skip-tree > b-link at zero contention (+18%%) "
              "and at high contention (+97%%);\nsnap-tree below b-link at "
              "zero contention (-29%%), above it under contention (+25%%).\n");
  return 0;
}

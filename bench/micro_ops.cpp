// Google-benchmark microbenchmarks: per-operation cost of contains / add /
// remove for each structure across working-set sizes.  These are not a
// paper figure; they localize WHERE the Figure 9 differences come from
// (e.g. the skip-list's pointer-chase per element vs the skip-tree's packed
// nodes as the working set leaves cache).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "avltree/opt_tree.hpp"
#include "avltree/snap_tree.hpp"
#include "bench_common.hpp"
#include "blinktree/blink_tree.hpp"
#include "common/rng.hpp"
#include "skiplist/skip_list.hpp"
#include "skiptree/skip_tree.hpp"

namespace {

using key = long;

/// The default tree under the forced-scalar kernel: subtracting its
/// BM_Contains panel from the default tree's isolates what the SIMD kernel
/// buys end-to-end.  Only meaningful (and only a distinct type) when
/// LFST_SIMD is ON; in an OFF build the default tree IS the scalar tree.
#if defined(LFST_SIMD)
using scalar_kernel_tree =
    lfst::skiptree::skip_tree<key, std::less<key>, lfst::reclaim::ebr_policy,
                              lfst::alloc::pool_policy,
                              lfst::skiptree::scalar_search_kernel>;
#endif

template <typename Set>
std::unique_ptr<Set> make_set() {
  return std::make_unique<Set>();
}

template <>
std::unique_ptr<lfst::skiptree::skip_tree<key>> make_set() {
  lfst::skiptree::skip_tree_options o;
  o.q_log2 = 5;
  return std::make_unique<lfst::skiptree::skip_tree<key>>(o);
}

#if defined(LFST_SIMD)
template <>
std::unique_ptr<scalar_kernel_tree> make_set() {
  lfst::skiptree::skip_tree_options o;
  o.q_log2 = 5;
  return std::make_unique<scalar_kernel_tree>(o);
}
#endif

template <>
std::unique_ptr<lfst::blinktree::blink_tree<key>> make_set() {
  lfst::blinktree::blink_tree_options o;
  o.min_node_size = 128;
  return std::make_unique<lfst::blinktree::blink_tree<key>>(o);
}

/// Pre-fill with `size` random keys from a range 4x the size (so about half
/// of the probe keys hit).
template <typename Set>
std::uint64_t prefill(Set& set, std::int64_t size) {
  lfst::xoshiro256ss rng(0xf111);
  const std::uint64_t range = static_cast<std::uint64_t>(size) * 4;
  for (std::int64_t i = 0; i < size; ++i) {
    set.add(static_cast<key>(rng.below(range)));
  }
  return range;
}

template <typename Set>
void BM_Contains(benchmark::State& state) {
  auto set = make_set<Set>();
  const std::uint64_t range = prefill(*set, state.range(0));
  lfst::xoshiro256ss rng(0xc0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        set->contains(static_cast<key>(rng.below(range))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <typename Set>
void BM_AddRemoveCycle(benchmark::State& state) {
  auto set = make_set<Set>();
  const std::uint64_t range = prefill(*set, state.range(0));
  lfst::xoshiro256ss rng(0xad);
  for (auto _ : state) {
    const key k = static_cast<key>(rng.below(range));
    benchmark::DoNotOptimize(set->add(k));
    benchmark::DoNotOptimize(set->remove(k));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}

template <typename Set>
void BM_Iterate(benchmark::State& state) {
  auto set = make_set<Set>();
  prefill(*set, state.range(0));
  for (auto _ : state) {
    std::uint64_t n = 0;
    set->for_each([&](const key&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

constexpr std::int64_t kSmall = 1 << 10;
constexpr std::int64_t kMedium = 1 << 16;
constexpr std::int64_t kLarge = 1 << 20;

// Fixed iteration counts: benchmark's automatic calibration would re-enter
// the benchmark function (and so redo the expensive prefill) several times
// per case.
#define LFST_BENCH_SET(fn, iters)                                       \
  BENCHMARK_TEMPLATE(fn, lfst::skiptree::skip_tree<key>)                \
      ->Arg(kSmall)->Arg(kMedium)->Arg(kLarge)->Iterations(iters);      \
  BENCHMARK_TEMPLATE(fn, lfst::skiplist::skip_list<key>)                \
      ->Arg(kSmall)->Arg(kMedium)->Arg(kLarge)->Iterations(iters);      \
  BENCHMARK_TEMPLATE(fn, lfst::avltree::opt_tree<key>)                  \
      ->Arg(kSmall)->Arg(kMedium)->Arg(kLarge)->Iterations(iters);      \
  BENCHMARK_TEMPLATE(fn, lfst::blinktree::blink_tree<key>)              \
      ->Arg(kSmall)->Arg(kMedium)->Arg(kLarge)->Iterations(iters);

LFST_BENCH_SET(BM_Contains, 300000)
LFST_BENCH_SET(BM_AddRemoveCycle, 100000)

// Contains-heavy A/B of the kernel layer on the full tree: same structure,
// same descent, only the in-node kernel differs.
#if defined(LFST_SIMD)
BENCHMARK_TEMPLATE(BM_Contains, scalar_kernel_tree)
    ->Arg(kSmall)->Arg(kMedium)->Arg(kLarge)->Iterations(300000);
#endif

// The in-node search kernels in isolation: random probes into a pool of
// node-like sorted key runs, one search per iteration.  The pool is large
// enough that the probed run usually misses L1, matching how a descent
// encounters a node; `width` sweeps the node sizes the trees actually build
// (expected skip-tree width 1/q = 32; b-link nodes up to 2M = 256).
template <typename Kernel>
void BM_KernelSearch(benchmark::State& state) {
  const std::uint32_t width = static_cast<std::uint32_t>(state.range(0));
  constexpr std::size_t kNodes = 4096;
  std::vector<key> pool(kNodes * width);
  lfst::xoshiro256ss rng(0x5ea7c4);
  for (key& k : pool) k = static_cast<key>(rng.below(1u << 30));
  for (std::size_t n = 0; n < kNodes; ++n) {
    std::sort(pool.begin() + static_cast<std::ptrdiff_t>(n * width),
              pool.begin() + static_cast<std::ptrdiff_t>((n + 1) * width));
  }
  const std::less<key> cmp;
  for (auto _ : state) {
    const std::size_t n = rng.below(kNodes);
    const key v = static_cast<key>(rng.below(1u << 30));
    benchmark::DoNotOptimize(
        Kernel::search(pool.data() + n * width, width, v, cmp));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

#define LFST_BENCH_KERNEL(kernel)                                        \
  BENCHMARK_TEMPLATE(BM_KernelSearch, kernel)                            \
      ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)                    \
      ->Iterations(2000000);

LFST_BENCH_KERNEL(lfst::skiptree::scalar_search_kernel)
LFST_BENCH_KERNEL(lfst::skiptree::branchfree_search_kernel)
LFST_BENCH_KERNEL(lfst::skiptree::simd_search_kernel)

// Iteration also includes the snap-tree (the Figure 10 participant).
BENCHMARK_TEMPLATE(BM_Iterate, lfst::skiptree::skip_tree<key>)
    ->Arg(kMedium)->Arg(kLarge)->Iterations(8);
BENCHMARK_TEMPLATE(BM_Iterate, lfst::skiplist::skip_list<key>)
    ->Arg(kMedium)->Arg(kLarge)->Iterations(8);
BENCHMARK_TEMPLATE(BM_Iterate, lfst::avltree::snap_tree<key>)
    ->Arg(kMedium)->Arg(kLarge)->Iterations(8);
BENCHMARK_TEMPLATE(BM_Iterate, lfst::blinktree::blink_tree<key>)
    ->Arg(kMedium)->Arg(kLarge)->Iterations(8);

// Multi-threaded add/remove over a deliberately tiny key range: the whole
// set fits in a handful of leaves, so concurrent payload CASes collide and
// the skip-tree's retry paths (and hence the LFST_METRICS retry histograms)
// become non-trivial.
void BM_ContendedAddRemove(benchmark::State& state) {
  static lfst::skiptree::skip_tree<key>* shared = [] {
    lfst::skiptree::skip_tree_options o;
    o.q_log2 = 5;
    auto* t = new lfst::skiptree::skip_tree<key>(o);
    lfst::xoshiro256ss rng(0xc027);
    for (int i = 0; i < 12; ++i) t->add(static_cast<key>(rng.below(16)));
    return t;
  }();
  lfst::xoshiro256ss rng(0xc028 + static_cast<std::uint64_t>(
                                      state.thread_index()));
  for (auto _ : state) {
    const key k = static_cast<key>(rng.below(16));
    benchmark::DoNotOptimize(shared->add(k));
    benchmark::DoNotOptimize(shared->remove(k));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_ContendedAddRemove)->Threads(4)->Iterations(250000);

/// Console output as usual, plus every per-iteration run captured into the
/// bench-JSON sidecar (one summary entry per case, named by the benchmark's
/// canonical name -- stable across runs, which is what the gate joins on).
class json_capture_reporter : public benchmark::ConsoleReporter {
 public:
  explicit json_capture_reporter(lfst::bench::bench_json_reporter& out)
      : out_(out) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& r : reports) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      auto it = r.counters.find("items_per_second");
      const double items_per_ms =
          it == r.counters.end() ? 0.0
                                 : static_cast<double>(it->second) / 1000.0;
      out_.record(r.benchmark_name(), r.threads,
                  lfst::summary::of({items_per_ms}));
    }
  }

 private:
  lfst::bench::bench_json_reporter& out_;
};

}  // namespace

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::bench_json_reporter bench_json("micro", argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  json_capture_reporter reporter(bench_json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

// Shared plumbing for the figure-reproduction benchmark binaries.
//
// Every harness prints the same row format and honours the same environment
// knobs, so a full run (`for b in build/bench/*; do $b; done`) produces a
// coherent report:
//
//   LFST_BENCH_OPS     total operations per trial      (default 400000)
//   LFST_BENCH_TRIALS  repetitions per configuration   (default 3; paper 64)
//   LFST_BENCH_THREADS comma-separated thread counts   (default "1,2,4,8")
//
// The defaults are sized for a small CI-class machine; raising OPS/TRIALS
// toward the paper's 5M x 64 sharpens the statistics without changing the
// harness.
// A metrics sidecar can ride along with any bench: pass --metrics-json
// (or --metrics-json=PATH, or set LFST_METRICS_JSON=PATH) and the process
// writes a JSON-lines dump of the metrics registry on exit.  The counters
// are only populated in -DLFST_METRICS=ON builds; an OFF build writes an
// all-zero dump, making the flag safe to leave in scripts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/metrics_export.hpp"
#include "workload/table.hpp"
#include "workload/workload.hpp"

namespace lfst::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

inline std::vector<int> env_threads(const char* name,
                                    std::vector<int> fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::vector<int> out;
  for (const char* p = v; *p != '\0';) {
    out.push_back(std::atoi(p));
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return out.empty() ? fallback : out;
}

struct bench_config {
  std::size_t ops = 400000;
  int trials = 3;
  std::vector<int> threads{1, 2, 4, 8};

  static bench_config from_env() {
    bench_config c;
    c.ops = env_size("LFST_BENCH_OPS", c.ops);
    c.trials = static_cast<int>(env_size("LFST_BENCH_TRIALS",
                                         static_cast<std::size_t>(c.trials)));
    c.threads = env_threads("LFST_BENCH_THREADS", c.threads);
    return c;
  }
};

inline const char* mix_name(const workload::mix& m) {
  return m.contains_pct >= 60 ? "90c/9a/1r" : "33c/33a/33r";
}

inline std::string range_name(std::uint64_t range) {
  if (range == workload::kRangeSmall) return "500";
  if (range == workload::kRangeMedium) return "200,000";
  if (range == workload::kRangeLarge) return "2^32";
  return std::to_string(range);
}

inline void print_header(const char* what, const bench_config& c) {
  std::printf("== %s ==\n", what);
  std::printf("ops/trial=%zu trials=%d (override with LFST_BENCH_OPS / "
              "LFST_BENCH_TRIALS / LFST_BENCH_THREADS)\n\n",
              c.ops, c.trials);
}

/// Scope object every bench main constructs first: consumes the
/// `--metrics-json[=PATH]` argument (removing it from argv so downstream
/// parsers -- google-benchmark in particular -- never see it) and, if the
/// flag or the LFST_METRICS_JSON environment variable asked for a sidecar,
/// writes the aggregated registry as JSON lines on destruction.
class metrics_reporter {
 public:
  metrics_reporter(int& argc, char** argv) {
    if (const char* env = std::getenv("LFST_METRICS_JSON");
        env != nullptr && *env != '\0') {
      path_ = env;
    }
    int w = 1;
    for (int r = 1; r < argc; ++r) {
      if (std::strcmp(argv[r], "--metrics-json") == 0) {
        if (path_.empty()) path_ = "metrics.jsonl";
        continue;
      }
      if (std::strncmp(argv[r], "--metrics-json=", 15) == 0) {
        path_ = argv[r] + 15;
        continue;
      }
      argv[w++] = argv[r];
    }
    argc = w;
  }

  metrics_reporter(const metrics_reporter&) = delete;
  metrics_reporter& operator=(const metrics_reporter&) = delete;

  ~metrics_reporter() {
    if (path_.empty()) return;
    const auto& reg = metrics::registry::instance();
    if (metrics::write_json_file(path_, reg.aggregate(), reg.drain_trace())) {
      std::fprintf(stderr, "metrics sidecar written to %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "metrics sidecar: cannot write %s\n",
                   path_.c_str());
    }
  }

  bool enabled() const noexcept { return !path_.empty(); }

 private:
  std::string path_;
};

}  // namespace lfst::bench

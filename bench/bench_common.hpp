// Shared plumbing for the figure-reproduction benchmark binaries.
//
// Every harness prints the same row format and honours the same environment
// knobs, so a full run (`for b in build/bench/*; do $b; done`) produces a
// coherent report:
//
//   LFST_BENCH_OPS     total operations per trial      (default 400000)
//   LFST_BENCH_TRIALS  repetitions per configuration   (default 3; paper 64)
//   LFST_BENCH_THREADS comma-separated thread counts   (default "1,2,4,8")
//
// The defaults are sized for a small CI-class machine; raising OPS/TRIALS
// toward the paper's 5M x 64 sharpens the statistics without changing the
// harness.
// A metrics sidecar can ride along with any bench: pass --metrics-json
// (or --metrics-json=PATH, or set LFST_METRICS_JSON=PATH) and the process
// writes a JSON-lines dump of the metrics registry on exit.  The counters
// are only populated in -DLFST_METRICS=ON builds; an OFF build writes an
// all-zero dump, making the flag safe to leave in scripts.
//
// Two more sidecars complete the observability pipeline:
//
//   --bench-json[=PATH]  (env LFST_BENCH_JSON)   machine-readable summary of
//       every measured configuration -- the file tools/bench_gate.py diffs
//       against the checked-in BENCH_*.json baselines;
//   --trace-json[=PATH] / --trace-bin[=PATH] (env LFST_TRACE_JSON /
//       LFST_TRACE_BIN)  span-trace dumps, Chrome/Perfetto JSON or the
//       compact binary that tools/trace2perfetto.py converts.  Meaningful in
//       -DLFST_TRACE=ON builds; an OFF build writes an empty trace.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/metrics_export.hpp"
#include "common/stats.hpp"
#include "common/telemetry.hpp"
#include "common/trace.hpp"
#include "common/trace_export.hpp"
#include "skiptree/detail/kernel.hpp"
#include "workload/table.hpp"
#include "workload/workload.hpp"

namespace lfst::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

inline std::vector<int> env_threads(const char* name,
                                    std::vector<int> fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::vector<int> out;
  for (const char* p = v; *p != '\0';) {
    out.push_back(std::atoi(p));
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return out.empty() ? fallback : out;
}

struct bench_config {
  std::size_t ops = 400000;
  int trials = 3;
  std::vector<int> threads{1, 2, 4, 8};

  static bench_config from_env() {
    bench_config c;
    c.ops = env_size("LFST_BENCH_OPS", c.ops);
    c.trials = static_cast<int>(env_size("LFST_BENCH_TRIALS",
                                         static_cast<std::size_t>(c.trials)));
    c.threads = env_threads("LFST_BENCH_THREADS", c.threads);
    return c;
  }
};

inline const char* mix_name(const workload::mix& m) {
  return m.contains_pct >= 60 ? "90c/9a/1r" : "33c/33a/33r";
}

inline std::string range_name(std::uint64_t range) {
  if (range == workload::kRangeSmall) return "500";
  if (range == workload::kRangeMedium) return "200,000";
  if (range == workload::kRangeLarge) return "2^32";
  return std::to_string(range);
}

inline void print_header(const char* what, const bench_config& c) {
  std::printf("== %s ==\n", what);
  std::printf("ops/trial=%zu trials=%d kernel=%s (override with "
              "LFST_BENCH_OPS / LFST_BENCH_TRIALS / LFST_BENCH_THREADS)\n\n",
              c.ops, c.trials, skiptree::selected_kernel_name());
}

/// Scope object every bench main constructs first: consumes the
/// `--metrics-json[=PATH]` argument (removing it from argv so downstream
/// parsers -- google-benchmark in particular -- never see it) and, if the
/// flag or the LFST_METRICS_JSON environment variable asked for a sidecar,
/// writes the aggregated registry as JSON lines on destruction.
class metrics_reporter {
 public:
  metrics_reporter(int& argc, char** argv) {
    if (const char* env = std::getenv("LFST_METRICS_JSON");
        env != nullptr && *env != '\0') {
      path_ = env;
    }
    int w = 1;
    for (int r = 1; r < argc; ++r) {
      if (std::strcmp(argv[r], "--metrics-json") == 0) {
        if (path_.empty()) path_ = "metrics.jsonl";
        continue;
      }
      if (std::strncmp(argv[r], "--metrics-json=", 15) == 0) {
        path_ = argv[r] + 15;
        continue;
      }
      argv[w++] = argv[r];
    }
    argc = w;
  }

  metrics_reporter(const metrics_reporter&) = delete;
  metrics_reporter& operator=(const metrics_reporter&) = delete;

  ~metrics_reporter() {
    if (path_.empty()) return;
    const auto& reg = metrics::registry::instance();
    if (metrics::write_json_file(path_, reg.aggregate(), reg.drain_trace())) {
      // Append the run's search-kernel selection as a meta record: the gate
      // only consumes counter/histogram/gauge lines, but humans diffing
      // sidecars need to know which kernel produced the numbers.
      if (std::FILE* f = std::fopen(path_.c_str(), "a"); f != nullptr) {
        std::fprintf(f, "{\"type\":\"meta\",\"name\":\"kernel\",\"value\":"
                        "\"%s\"}\n",
                     skiptree::selected_kernel_name());
        std::fclose(f);
      }
      std::fprintf(stderr, "metrics sidecar written to %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "metrics sidecar: cannot write %s\n",
                   path_.c_str());
    }
  }

  bool enabled() const noexcept { return !path_.empty(); }

 private:
  std::string path_;
};

/// Consume `--flag` / `--flag=PATH` from argv, falling back to `env`.
/// Returns the chosen path ("" when the sidecar was not requested;
/// `fallback` when the flag was given valueless).
inline std::string consume_path_flag(int& argc, char** argv, const char* flag,
                                     const char* env, const char* fallback) {
  std::string path;
  if (const char* e = std::getenv(env); e != nullptr && *e != '\0') path = e;
  const std::size_t flen = std::strlen(flag);
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], flag) == 0) {
      if (path.empty()) path = fallback;
      continue;
    }
    if (std::strncmp(argv[r], flag, flen) == 0 && argv[r][flen] == '=') {
      path = argv[r] + flen + 1;
      continue;
    }
    argv[w++] = argv[r];
  }
  argc = w;
  return path;
}

/// Machine-readable bench summary sidecar: every measured configuration is
/// record()ed as it completes; destruction writes one JSON document that
/// tools/bench_gate.py diffs against a checked-in baseline.  Entry names
/// must be stable across runs (the gate joins baseline and candidate on
/// them) and unique within a run.
class bench_json_reporter {
 public:
  bench_json_reporter(const char* bench, int& argc, char** argv)
      : bench_(bench),
        path_(consume_path_flag(argc, argv, "--bench-json", "LFST_BENCH_JSON",
                                "bench.json")) {}

  bench_json_reporter(const bench_json_reporter&) = delete;
  bench_json_reporter& operator=(const bench_json_reporter&) = delete;

  bool enabled() const noexcept { return !path_.empty(); }

  /// Record one configuration's throughput summary (ops/ms over trials)
  /// plus any extra named scalars (health occupancy, backlog, ...).
  void record(std::string name, int threads, const summary& s,
              std::vector<std::pair<std::string, double>> extra = {}) {
    entries_.push_back(
        entry{std::move(name), threads, s, std::move(extra)});
  }

  ~bench_json_reporter() {
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench json: cannot write %s\n", path_.c_str());
      return;
    }
    // The kernel stamp pairs candidate runs with like baselines: bench_gate
    // refuses to diff two documents whose kernels differ (a scalar run
    // "regressing" against an avx2 baseline is a configuration error, not a
    // performance signal).
    std::fprintf(f, "{\"bench\":\"%s\",\"kernel\":\"%s\",\"entries\":[",
                 metrics::json_escape(bench_).c_str(),
                 skiptree::selected_kernel_name());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const entry& e = entries_[i];
      const summary& s = e.stats;
      std::fprintf(
          f,
          "%s\n {\"name\":\"%s\",\"threads\":%d,\"trials\":%zu,"
          "\"ops_per_ms\":{\"mean\":%.6g,\"stddev\":%.6g,\"min\":%.6g,"
          "\"max\":%.6g,\"p50\":%.6g,\"p90\":%.6g,\"p95\":%.6g,"
          "\"p99\":%.6g}",
          i == 0 ? "" : ",", metrics::json_escape(e.name).c_str(), e.threads,
          s.count, s.mean, s.stddev, s.min, s.max, s.p50, s.p90, s.p95, s.p99);
      if (!e.extra.empty()) {
        std::fprintf(f, ",\"extra\":{");
        for (std::size_t j = 0; j < e.extra.size(); ++j) {
          std::fprintf(f, "%s\"%s\":%.6g", j == 0 ? "" : ",",
                       metrics::json_escape(e.extra[j].first).c_str(),
                       e.extra[j].second);
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n],\"retry_hists\":{");
    // Retry-shape context rides along so a regression diff can distinguish
    // "slower because contending more" from "slower, same contention".
    // Nonzero log2 buckets only; all-zero in metrics-OFF builds.
    const auto snap = metrics::registry::instance().aggregate();
    bool first_h = true;
    for (const auto& h : snap.histograms) {
      if (h.name.find("retries") == std::string_view::npos) continue;
      std::fprintf(f, "%s\"%s\":[", first_h ? "" : ",",
                   metrics::json_escape(h.name).c_str());
      first_h = false;
      bool first_b = true;
      for (std::size_t b = 0; b < h.buckets.size(); ++b) {
        if (h.buckets[b] == 0) continue;
        std::fprintf(f, "%s[%zu,%llu]", first_b ? "" : ",", b,
                     static_cast<unsigned long long>(h.buckets[b]));
        first_b = false;
      }
      std::fprintf(f, "]");
    }
    std::fprintf(f, "}}\n");
    std::fclose(f);
    std::fprintf(stderr, "bench json written to %s\n", path_.c_str());
  }

 private:
  struct entry {
    std::string name;
    int threads;
    summary stats;
    std::vector<std::pair<std::string, double>> extra;
  };

  std::string bench_;
  std::string path_;
  std::vector<entry> entries_;
};

/// Telemetry sidecar: --telemetry-json[=PATH] (env LFST_TELEMETRY_JSON)
/// starts the plane's background aggregator (interval from
/// LFST_TELEMETRY_INTERVAL_MS, default 50) for the life of the bench and
/// writes the JSON-lines export -- schema, ring samples, sketch summaries
/// -- on destruction.  --telemetry-prom[=PATH] (env LFST_TELEMETRY_PROM)
/// additionally writes the Prometheus text exposition of the final state.
/// Benches can note() extra pre-serialized JSON-lines records (the
/// contention heatmap) to append to the JSON sidecar.  Hot-path hooks only
/// populate the sketches in -DLFST_TELEMETRY=ON builds (the default);
/// compiled-out builds still write a valid, mostly-empty file.
class telemetry_reporter {
 public:
  telemetry_reporter(int& argc, char** argv)
      : json_path_(consume_path_flag(argc, argv, "--telemetry-json",
                                     "LFST_TELEMETRY_JSON",
                                     "telemetry.jsonl")),
        prom_path_(consume_path_flag(argc, argv, "--telemetry-prom",
                                     "LFST_TELEMETRY_PROM",
                                     "telemetry.prom")) {
    if (!enabled()) return;
    const std::size_t ms = env_size("LFST_TELEMETRY_INTERVAL_MS", 50);
    telemetry::plane::instance().start(
        std::chrono::milliseconds(ms == 0 ? 50 : ms));
  }

  telemetry_reporter(const telemetry_reporter&) = delete;
  telemetry_reporter& operator=(const telemetry_reporter&) = delete;

  bool enabled() const noexcept {
    return !json_path_.empty() || !prom_path_.empty();
  }

  /// Append one pre-serialized JSON object (no trailing newline needed) to
  /// the JSON-lines sidecar, e.g. a heatmap_snapshot::to_json() record.
  void note(std::string json_line) {
    notes_.push_back(std::move(json_line));
  }

  ~telemetry_reporter() {
    if (!enabled()) return;
    auto& p = telemetry::plane::instance();
    p.stop();
    p.snapshot_now();  // final sample so short runs export at least one
    if (!json_path_.empty()) {
      if (p.write_json_file(json_path_)) {
        if (std::FILE* f = std::fopen(json_path_.c_str(), "a");
            f != nullptr) {
          for (const std::string& n : notes_) {
            std::fprintf(f, "%s\n", n.c_str());
          }
          std::fprintf(f,
                       "{\"type\":\"meta\",\"name\":\"kernel\",\"value\":"
                       "\"%s\"}\n",
                       skiptree::selected_kernel_name());
          std::fclose(f);
        }
        std::fprintf(stderr, "telemetry sidecar written to %s\n",
                     json_path_.c_str());
      } else {
        std::fprintf(stderr, "telemetry sidecar: cannot write %s\n",
                     json_path_.c_str());
      }
    }
    if (!prom_path_.empty()) {
      if (std::FILE* f = std::fopen(prom_path_.c_str(), "w"); f != nullptr) {
        const std::string text = p.to_prometheus();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "telemetry exposition written to %s\n",
                     prom_path_.c_str());
      } else {
        std::fprintf(stderr, "telemetry exposition: cannot write %s\n",
                     prom_path_.c_str());
      }
    }
  }

 private:
  std::string json_path_;
  std::string prom_path_;
  std::vector<std::string> notes_;
};

/// Span-trace sidecar: on destruction, drains the trace registry and writes
/// the Chrome/Perfetto JSON (--trace-json) and/or the compact binary
/// (--trace-bin).  Rings fill only in -DLFST_TRACE=ON builds; elsewhere the
/// files are valid but empty, so the flags are safe to leave in scripts.
class trace_reporter {
 public:
  trace_reporter(int& argc, char** argv)
      : json_path_(consume_path_flag(argc, argv, "--trace-json",
                                     "LFST_TRACE_JSON", "trace.json")),
        bin_path_(consume_path_flag(argc, argv, "--trace-bin",
                                    "LFST_TRACE_BIN", "trace.bin")) {}

  trace_reporter(const trace_reporter&) = delete;
  trace_reporter& operator=(const trace_reporter&) = delete;

  ~trace_reporter() {
    if (json_path_.empty() && bin_path_.empty()) return;
    const auto& reg = trace::trace_registry::instance();
    const auto spans = reg.drain();
    const double tpu = reg.ticks_per_us();
    if (!json_path_.empty()) {
      if (trace::write_chrome_json_file(json_path_, spans, tpu)) {
        std::fprintf(stderr, "trace json (%zu spans) written to %s\n",
                     spans.size(), json_path_.c_str());
      } else {
        std::fprintf(stderr, "trace json: cannot write %s\n",
                     json_path_.c_str());
      }
    }
    if (!bin_path_.empty()) {
      if (trace::write_binary_file(bin_path_, spans, tpu)) {
        std::fprintf(stderr, "trace bin (%zu spans) written to %s\n",
                     spans.size(), bin_path_.c_str());
      } else {
        std::fprintf(stderr, "trace bin: cannot write %s\n",
                     bin_path_.c_str());
      }
    }
  }

 private:
  std::string json_path_;
  std::string bin_path_;
};

}  // namespace lfst::bench

// Shared plumbing for the figure-reproduction benchmark binaries.
//
// Every harness prints the same row format and honours the same environment
// knobs, so a full run (`for b in build/bench/*; do $b; done`) produces a
// coherent report:
//
//   LFST_BENCH_OPS     total operations per trial      (default 400000)
//   LFST_BENCH_TRIALS  repetitions per configuration   (default 3; paper 64)
//   LFST_BENCH_THREADS comma-separated thread counts   (default "1,2,4,8")
//
// The defaults are sized for a small CI-class machine; raising OPS/TRIALS
// toward the paper's 5M x 64 sharpens the statistics without changing the
// harness.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "workload/table.hpp"
#include "workload/workload.hpp"

namespace lfst::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

inline std::vector<int> env_threads(const char* name,
                                    std::vector<int> fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::vector<int> out;
  for (const char* p = v; *p != '\0';) {
    out.push_back(std::atoi(p));
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return out.empty() ? fallback : out;
}

struct bench_config {
  std::size_t ops = 400000;
  int trials = 3;
  std::vector<int> threads{1, 2, 4, 8};

  static bench_config from_env() {
    bench_config c;
    c.ops = env_size("LFST_BENCH_OPS", c.ops);
    c.trials = static_cast<int>(env_size("LFST_BENCH_TRIALS",
                                         static_cast<std::size_t>(c.trials)));
    c.threads = env_threads("LFST_BENCH_THREADS", c.threads);
    return c;
  }
};

inline const char* mix_name(const workload::mix& m) {
  return m.contains_pct >= 60 ? "90c/9a/1r" : "33c/33a/33r";
}

inline std::string range_name(std::uint64_t range) {
  if (range == workload::kRangeSmall) return "500";
  if (range == workload::kRangeMedium) return "200,000";
  if (range == workload::kRangeLarge) return "2^32";
  return std::to_string(range);
}

inline void print_header(const char* what, const bench_config& c) {
  std::printf("== %s ==\n", what);
  std::printf("ops/trial=%zu trials=%d (override with LFST_BENCH_OPS / "
              "LFST_BENCH_TRIALS / LFST_BENCH_THREADS)\n\n",
              c.ops, c.trials);
}

}  // namespace lfst::bench

// Ablation C: structural optimality -- organically grown vs bulk-loaded.
//
// The paper's thesis is that relaxed optimality is harmless because
// compaction restores good paths over time.  This harness quantifies the
// other end: how much read throughput does a perfectly optimal structure
// (bulk-loaded at exactly width 1/q) have over (a) an organically grown
// tree and (b) a deliberately degraded one (grown with churn, compaction
// off)?  The gap bounds what lazy compaction is ultimately chasing.
#include <algorithm>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "skiptree/skip_tree.hpp"
#include "skiptree/validate.hpp"

namespace {

using key = long;
using lfst::bench::bench_config;
using lfst::workload::scenario;

double read_throughput(lfst::skiptree::skip_tree<key>& set,
                       const bench_config& cfg, std::uint64_t range) {
  scenario sc;
  sc.operations = lfst::workload::mix{100, 0, 0};
  sc.key_range = range;
  sc.total_ops = cfg.ops;
  sc.threads = cfg.threads.back();
  sc.seed = 0xb11c;
  std::vector<std::vector<lfst::workload::op>> streams;
  for (int tid = 0; tid < sc.threads; ++tid) {
    streams.push_back(lfst::workload::make_op_stream(sc, sc.seed, tid));
  }
  return lfst::workload::execute_trial(set, streams).ops_per_ms;
}

}  // namespace

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  const bench_config cfg = bench_config::from_env();
  lfst::bench::print_header(
      "Ablation C: bulk-loaded (optimal) vs grown vs degraded", cfg);

  constexpr std::uint64_t kRange = 1 << 22;
  constexpr std::size_t kKeys = 300000;
  lfst::skiptree::skip_tree_options o;
  o.q_log2 = 5;

  // The common key set.
  std::vector<key> keys;
  {
    lfst::xoshiro256ss rng(0xdead);
    keys.reserve(kKeys);
    for (std::size_t i = 0; i < kKeys; ++i) {
      keys.push_back(static_cast<key>(rng.below(kRange)));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }

  lfst::workload::table tab({"tree construction", "read ops/ms", "nodes",
                             "empty", "suboptimal refs"});

  {
    auto t = lfst::skiptree::skip_tree<key>::from_sorted(keys, o);
    const double tput = read_throughput(t, cfg, kRange);
    const auto rep = lfst::skiptree::skip_tree_inspector<key>(t).validate();
    tab.add_row({"bulk-loaded (optimal)", lfst::workload::table::fmt(tput, 0),
                 std::to_string(rep.total_nodes),
                 std::to_string(rep.empty_nodes),
                 std::to_string(rep.suboptimal_refs)});
  }
  {
    lfst::skiptree::skip_tree<key> t(o);
    for (key k : keys) t.add(k);
    const double tput = read_throughput(t, cfg, kRange);
    const auto rep = lfst::skiptree::skip_tree_inspector<key>(t).validate();
    tab.add_row({"grown (random heights)", lfst::workload::table::fmt(tput, 0),
                 std::to_string(rep.total_nodes),
                 std::to_string(rep.empty_nodes),
                 std::to_string(rep.suboptimal_refs)});
  }
  {
    lfst::skiptree::skip_tree_options off = o;
    off.compaction = false;
    lfst::skiptree::skip_tree<key> t(off);
    // Grow with churn: insert everything plus decoys, remove the decoys.
    lfst::xoshiro256ss rng(0xbeef);
    for (key k : keys) t.add(k);
    std::vector<key> decoys;
    for (std::size_t i = 0; i < kKeys; ++i) {
      const key k = static_cast<key>(rng.below(kRange));
      if (t.add(k)) decoys.push_back(k);
    }
    for (key k : decoys) t.remove(k);
    const double tput = read_throughput(t, cfg, kRange);
    const auto rep = lfst::skiptree::skip_tree_inspector<key>(t).validate();
    tab.add_row({"degraded (churn, no compaction)",
                 lfst::workload::table::fmt(tput, 0),
                 std::to_string(rep.total_nodes),
                 std::to_string(rep.empty_nodes),
                 std::to_string(rep.suboptimal_refs)});
  }
  tab.print();
  std::printf("\nexpected shape: optimal >= grown > degraded; save/load "
              "(skiptree/serialize.hpp)\nturns any tree into the first "
              "row.\n");
  return 0;
}

// Contention profile: CAS-failure rate vs thread count and working-set
// size.
//
// Figure 9's small-working-set panels (max size 500) are dominated by CAS
// contention: with only a handful of nodes, concurrent writers keep
// invalidating each other's payload snapshots.  This harness measures the
// skip-tree's lost-CAS rate directly across thread counts and key ranges,
// the microscopic view of the macroscopic throughput curves.
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "skiptree/skip_tree.hpp"

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  using lfst::bench::bench_config;
  using lfst::workload::scenario;
  const bench_config cfg = bench_config::from_env();
  lfst::bench::print_header(
      "Contention profile: skip-tree lost-CAS rate (write-dominated mix)",
      cfg);

  lfst::workload::table tab({"range", "threads", "ops/ms", "CAS failures",
                             "failures per 1k ops"});
  for (const std::uint64_t range :
       {lfst::workload::kRangeSmall, lfst::workload::kRangeMedium,
        lfst::workload::kRangeLarge}) {
    for (const int threads : cfg.threads) {
      scenario sc;
      sc.operations = lfst::workload::kWriteDominated;
      sc.key_range = range;
      sc.total_ops = cfg.ops;
      sc.threads = threads;
      sc.seed = 0xca5 + static_cast<std::uint64_t>(threads);

      lfst::skiptree::skip_tree_options o;
      o.q_log2 = 5;
      auto set = std::make_unique<lfst::skiptree::skip_tree<long>>(o);
      std::vector<std::vector<lfst::workload::op>> streams;
      for (int tid = 0; tid < threads; ++tid) {
        streams.push_back(lfst::workload::make_op_stream(sc, sc.seed, tid));
      }
      lfst::workload::preload(*set, streams);
      const auto before = set->stats().cas_failures;
      const auto r = lfst::workload::execute_trial(*set, streams);
      const auto failures = set->stats().cas_failures - before;
      tab.add_row(
          {lfst::bench::range_name(range), std::to_string(threads),
           lfst::workload::table::fmt(r.ops_per_ms, 0),
           std::to_string(failures),
           lfst::workload::table::fmt(
               1000.0 * static_cast<double>(failures) /
                   static_cast<double>(cfg.ops),
               2)});
    }
  }
  tab.print();
  std::printf("\nexpected shape on parallel hardware: failure rate rises "
              "with threads and falls with\nrange (the small working set "
              "concentrates writers on a handful of payload words).\nOn an "
              "oversubscribed single core, failures stay near zero: threads "
              "are rarely\npreempted inside the read-CAS window, which is "
              "also why Figure 9's contention\ncollapse is muted there.\n");
  return 0;
}

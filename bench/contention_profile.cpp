// Contention profile: CAS-failure rate vs thread count and working-set
// size, with per-level attribution.
//
// Figure 9's small-working-set panels (max size 500) are dominated by CAS
// contention: with only a handful of nodes, concurrent writers keep
// invalidating each other's payload snapshots.  This harness measures the
// skip-tree's lost-CAS rate directly across thread counts and key ranges,
// the microscopic view of the macroscopic throughput curves.
//
// The always-on CAS heatmap (skiptree/heatmap.hpp) rides along: every
// configuration prints WHERE the failures landed (hottest level and its
// share), every heatmap goes into the --telemetry-json sidecar for
// tools/telemetry_report.py, and the harness HARD-CHECKS the attribution
// invariant -- the heatmap's bucket totals must equal the tree's
// cas_failures counter exactly (the tree is quiescent when both are read).
// A mismatch exits nonzero so CI catches a missed attribution site.
#include <cinttypes>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "skiptree/skip_tree.hpp"

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  lfst::bench::telemetry_reporter telemetry(argc, argv);
  using lfst::bench::bench_config;
  using lfst::workload::scenario;
  const bench_config cfg = bench_config::from_env();
  lfst::bench::print_header(
      "Contention profile: skip-tree lost-CAS rate (write-dominated mix)",
      cfg);

  bool attribution_ok = true;
  lfst::workload::table tab({"range", "threads", "ops/ms", "CAS failures",
                             "failures per 1k ops", "hot level (share)"});
  for (const std::uint64_t range :
       {lfst::workload::kRangeSmall, lfst::workload::kRangeMedium,
        lfst::workload::kRangeLarge}) {
    for (const int threads : cfg.threads) {
      scenario sc;
      sc.operations = lfst::workload::kWriteDominated;
      sc.key_range = range;
      sc.total_ops = cfg.ops;
      sc.threads = threads;
      sc.seed = 0xca5 + static_cast<std::uint64_t>(threads);

      lfst::skiptree::skip_tree_options o;
      o.q_log2 = 5;
      auto set = std::make_unique<lfst::skiptree::skip_tree<long>>(o);
      std::vector<std::vector<lfst::workload::op>> streams;
      for (int tid = 0; tid < threads; ++tid) {
        streams.push_back(lfst::workload::make_op_stream(sc, sc.seed, tid));
      }
      lfst::workload::preload(*set, streams);
      const auto before = set->stats().cas_failures;
      const auto r = lfst::workload::execute_trial(*set, streams);
      const auto failures = set->stats().cas_failures - before;

      // Attribution invariant: heatmap total == lifetime cas_failures
      // (preload included on both sides; the trial's workers have joined,
      // so both reads are quiescent and exact).
      const auto hm = set->contention_heatmap();
      const std::uint64_t lifetime = set->stats().cas_failures;
      if (hm.total() != lifetime) {
        attribution_ok = false;
        std::fprintf(stderr,
                     "ATTRIBUTION MISMATCH: heatmap total %" PRIu64
                     " != cas_failures %" PRIu64 " (range=%s threads=%d)\n",
                     hm.total(), lifetime,
                     lfst::bench::range_name(range).c_str(), threads);
      }

      const int hot = hm.hottest_level();
      const double share =
          hm.total() == 0 ? 0.0
                          : 100.0 * static_cast<double>(hm.level_total(hot)) /
                                static_cast<double>(hm.total());
      std::string hot_cell = "-";
      if (hm.total() > 0) {
        hot_cell = "L" + std::to_string(hot) + " (" +
                   lfst::workload::table::fmt(share, 0) + "%)";
      }
      telemetry.note(hm.to_json(
          "skiptree.cas",
          "\"range\":\"" + lfst::bench::range_name(range) +
              "\",\"threads\":" + std::to_string(threads) +
              ",\"cas_failures\":" + std::to_string(lifetime)));

      tab.add_row(
          {lfst::bench::range_name(range), std::to_string(threads),
           lfst::workload::table::fmt(r.ops_per_ms, 0),
           std::to_string(failures),
           lfst::workload::table::fmt(
               1000.0 * static_cast<double>(failures) /
                   static_cast<double>(cfg.ops),
               2),
           hot_cell});
    }
  }
  tab.print();
  std::printf("\nexpected shape on parallel hardware: failure rate rises "
              "with threads and falls with\nrange (the small working set "
              "concentrates writers on a handful of payload words).\nOn an "
              "oversubscribed single core, failures stay near zero: threads "
              "are rarely\npreempted inside the read-CAS window, which is "
              "also why Figure 9's contention\ncollapse is muted there.\n");
  if (!attribution_ok) {
    std::fprintf(stderr, "\nFAILED: heatmap attribution invariant violated "
                         "(see mismatches above)\n");
    return 1;
  }
  return 0;
}

// Figure 9 reproduction: total throughput (operations/ms) of the four
// concurrent ordered sets across thread counts, for the six panels of the
// paper's evaluation -- {90% contains / 9% add / 1% remove, 1/3 : 1/3 : 1/3}
// x {max size 500, 200,000, 2^32}.
//
// Structure parameters are the paper's tuned values: skip-tree q = 1/32,
// B-link tree M = 128 (Sec. V).  After the six panels the harness prints
// the summary ratios the paper quotes in the text (skip-tree vs skip-list
// average +41%, +129% on the large read-dominated panel, etc.) computed
// from THIS run's numbers, so the shape comparison is self-contained.
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "avltree/opt_tree.hpp"
#include "bench_common.hpp"
#include "blinktree/blink_tree.hpp"
#include "skiplist/skip_list.hpp"
#include "skiptree/skip_tree.hpp"

namespace {

using lfst::bench::bench_config;
using lfst::summary;
using lfst::workload::scenario;

using key = long;

std::unique_ptr<lfst::skiptree::skip_tree<key>> make_skip_tree() {
  lfst::skiptree::skip_tree_options o;
  o.q_log2 = 5;  // q = 1/32, the paper's best value
  return std::make_unique<lfst::skiptree::skip_tree<key>>(o);
}

std::unique_ptr<lfst::skiplist::skip_list<key>> make_skip_list() {
  return std::make_unique<lfst::skiplist::skip_list<key>>();
}

std::unique_ptr<lfst::avltree::opt_tree<key>> make_opt_tree() {
  return std::make_unique<lfst::avltree::opt_tree<key>>();
}

std::unique_ptr<lfst::blinktree::blink_tree<key>> make_blink_tree() {
  lfst::blinktree::blink_tree_options o;
  o.min_node_size = 128;  // the paper's best value
  return std::make_unique<lfst::blinktree::blink_tree<key>>(o);
}

struct entry {
  const char* name;
  std::function<summary(const scenario&)> run;
};

}  // namespace

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  const bench_config cfg = bench_config::from_env();
  lfst::bench::print_header("Figure 9: throughput vs thread count", cfg);

  const std::vector<entry> structures = {
      {"skip-tree",
       [](const scenario& sc) { return lfst::workload::run_scenario(sc, make_skip_tree); }},
      {"skip-list",
       [](const scenario& sc) { return lfst::workload::run_scenario(sc, make_skip_list); }},
      {"opt-tree",
       [](const scenario& sc) { return lfst::workload::run_scenario(sc, make_opt_tree); }},
      {"b-link-tree",
       [](const scenario& sc) { return lfst::workload::run_scenario(sc, make_blink_tree); }},
  };

  const std::vector<lfst::workload::mix> mixes = {
      lfst::workload::kReadDominated, lfst::workload::kWriteDominated};
  const std::vector<std::uint64_t> ranges = {lfst::workload::kRangeSmall,
                                             lfst::workload::kRangeMedium,
                                             lfst::workload::kRangeLarge};

  // mean ops/ms per (structure, panel, threads) for the summary ratios.
  std::map<std::string, std::vector<double>> vs_skiplist_ratio;
  double large_read_skiptree = 0.0;
  double large_read_skiplist = 0.0;

  for (const auto& m : mixes) {
    for (const auto range : ranges) {
      std::printf("-- panel: %s contains/add/remove, max size %s --\n",
                  lfst::bench::mix_name(m),
                  lfst::bench::range_name(range).c_str());
      lfst::workload::table tab(
          {"threads", "skip-tree", "skip-list", "opt-tree", "b-link-tree",
           "(ops/ms, mean +/- stddev)"});
      for (const int threads : cfg.threads) {
        scenario sc;
        sc.operations = m;
        sc.key_range = range;
        sc.total_ops = cfg.ops;
        sc.threads = threads;
        sc.trials = cfg.trials;
        sc.seed = 0x919 + static_cast<std::uint64_t>(threads);

        std::vector<std::string> row{std::to_string(threads)};
        double skiplist_mean = 0.0;
        std::map<std::string, double> means;
        for (const entry& e : structures) {
          const summary s = e.run(sc);
          means[e.name] = s.mean;
          if (std::string(e.name) == "skip-list") skiplist_mean = s.mean;
          row.push_back(lfst::workload::table::fmt(s.mean, 0) + " +/- " +
                        lfst::workload::table::fmt(s.stddev, 0));
        }
        row.emplace_back("");
        tab.add_row(row);
        for (const entry& e : structures) {
          if (std::string(e.name) != "skip-list" && skiplist_mean > 0.0) {
            vs_skiplist_ratio[e.name].push_back(means[e.name] / skiplist_mean);
          }
        }
        if (m.contains_pct >= 60 && range == lfst::workload::kRangeLarge &&
            threads == cfg.threads.back()) {
          large_read_skiptree = means["skip-tree"];
          large_read_skiplist = skiplist_mean;
        }
      }
      tab.print();
      std::printf("\n");
    }
  }

  std::printf("-- summary ratios (paper Sec. V quotes, recomputed from this "
              "run) --\n");
  for (const auto& [name, ratios] : vs_skiplist_ratio) {
    double sum = 0.0;
    for (double r : ratios) sum += r;
    const double avg = sum / static_cast<double>(ratios.size());
    std::printf("%-12s vs skip-list, averaged over all panels/threads: %+.0f%%"
                " (paper: skip-tree +41%%, opt-tree +26%%)\n",
                name.c_str(), (avg - 1.0) * 100.0);
  }
  if (large_read_skiplist > 0.0) {
    std::printf("skip-tree vs skip-list, large read-dominated panel at max "
                "threads: %+.0f%% (paper: +129%%)\n",
                (large_read_skiptree / large_read_skiplist - 1.0) * 100.0);
  }
  return 0;
}

// Figure 9 reproduction: total throughput (operations/ms) of the four
// concurrent ordered sets across thread counts, for the six panels of the
// paper's evaluation -- {90% contains / 9% add / 1% remove, 1/3 : 1/3 : 1/3}
// x {max size 500, 200,000, 2^32}.
//
// Structure parameters are the paper's tuned values: skip-tree q = 1/32,
// B-link tree M = 128 (Sec. V).  After the six panels the harness prints
// the summary ratios the paper quotes in the text (skip-tree vs skip-list
// average +41%, +129% on the large read-dominated panel, etc.) computed
// from THIS run's numbers, so the shape comparison is self-contained.
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "avltree/opt_tree.hpp"
#include "bench_common.hpp"
#include "blinktree/blink_tree.hpp"
#include "skiplist/skip_list.hpp"
#include "skiptree/health.hpp"
#include "skiptree/skip_tree.hpp"

namespace {

using lfst::bench::bench_config;
using lfst::summary;
using lfst::workload::scenario;

using key = long;

std::unique_ptr<lfst::skiptree::skip_tree<key>> make_skip_tree() {
  lfst::skiptree::skip_tree_options o;
  o.q_log2 = 5;  // q = 1/32, the paper's best value
  return std::make_unique<lfst::skiptree::skip_tree<key>>(o);
}

std::unique_ptr<lfst::skiplist::skip_list<key>> make_skip_list() {
  return std::make_unique<lfst::skiplist::skip_list<key>>();
}

std::unique_ptr<lfst::avltree::opt_tree<key>> make_opt_tree() {
  return std::make_unique<lfst::avltree::opt_tree<key>>();
}

std::unique_ptr<lfst::blinktree::blink_tree<key>> make_blink_tree() {
  lfst::blinktree::blink_tree_options o;
  o.min_node_size = 128;  // the paper's best value
  return std::make_unique<lfst::blinktree::blink_tree<key>>(o);
}

using extras_t = std::vector<std::pair<std::string, double>>;

struct entry {
  const char* name;
  std::function<summary(const scenario&, extras_t&)> run;
};

/// Per-trial observer for the skip-tree entries: a structural-health ticker
/// sampling the live tree through the timed trial, accumulating the series
/// means into the bench-JSON extras so a regression diff can correlate a
/// throughput change with a structural one.
struct health_accumulator {
  double occupancy_sum = 0.0;
  double backlog_sum = 0.0;
  std::size_t samples = 0;

  struct scope {
    std::unique_ptr<lfst::skiptree::health_ticker<key>> ticker;
    health_accumulator* acc;

    scope(std::unique_ptr<lfst::skiptree::health_ticker<key>> t,
          health_accumulator* a)
        : ticker(std::move(t)), acc(a) {}
    scope(scope&&) = default;
    ~scope() {
      if (ticker == nullptr) return;
      ticker->stop();
      for (const auto& s : ticker->samples()) {
        acc->occupancy_sum += s.occupancy_pct();
        acc->backlog_sum += static_cast<double>(s.compaction_backlog());
        ++acc->samples;
      }
    }
  };

  scope observe(lfst::skiptree::skip_tree<key>& tree) {
    auto t = std::make_unique<lfst::skiptree::health_ticker<key>>(
        tree, std::chrono::microseconds(500));
    t->start();
    return scope{std::move(t), this};
  }

  void flush_into(extras_t& extras) const {
    if (samples == 0) return;
    const double n = static_cast<double>(samples);
    extras.emplace_back("health_occupancy_pct", occupancy_sum / n);
    extras.emplace_back("health_backlog", backlog_sum / n);
    extras.emplace_back("health_samples", n);
  }
};

}  // namespace

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::bench_json_reporter bench_json("fig9", argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  lfst::bench::telemetry_reporter telemetry(argc, argv);
  const bench_config cfg = bench_config::from_env();
  lfst::bench::print_header("Figure 9: throughput vs thread count", cfg);

  const std::vector<entry> structures = {
      {"skip-tree",
       [](const scenario& sc, extras_t& extras) {
         health_accumulator acc;
         const summary s = lfst::workload::run_scenario(
             sc, make_skip_tree,
             [&acc](auto& tree, int) { return acc.observe(tree); });
         acc.flush_into(extras);
         return s;
       }},
      {"skip-list",
       [](const scenario& sc, extras_t&) {
         return lfst::workload::run_scenario(sc, make_skip_list);
       }},
      {"opt-tree",
       [](const scenario& sc, extras_t&) {
         return lfst::workload::run_scenario(sc, make_opt_tree);
       }},
      {"b-link-tree",
       [](const scenario& sc, extras_t&) {
         return lfst::workload::run_scenario(sc, make_blink_tree);
       }},
  };

  const std::vector<lfst::workload::mix> mixes = {
      lfst::workload::kReadDominated, lfst::workload::kWriteDominated};
  const std::vector<std::uint64_t> ranges = {lfst::workload::kRangeSmall,
                                             lfst::workload::kRangeMedium,
                                             lfst::workload::kRangeLarge};

  // mean ops/ms per (structure, panel, threads) for the summary ratios.
  std::map<std::string, std::vector<double>> vs_skiplist_ratio;
  double large_read_skiptree = 0.0;
  double large_read_skiplist = 0.0;

  for (const auto& m : mixes) {
    for (const auto range : ranges) {
      std::printf("-- panel: %s contains/add/remove, max size %s --\n",
                  lfst::bench::mix_name(m),
                  lfst::bench::range_name(range).c_str());
      lfst::workload::table tab(
          {"threads", "skip-tree", "skip-list", "opt-tree", "b-link-tree",
           "(ops/ms, mean +/- stddev)"});
      for (const int threads : cfg.threads) {
        scenario sc;
        sc.operations = m;
        sc.key_range = range;
        sc.total_ops = cfg.ops;
        sc.threads = threads;
        sc.trials = cfg.trials;
        sc.seed = 0x919 + static_cast<std::uint64_t>(threads);

        std::vector<std::string> row{std::to_string(threads)};
        double skiplist_mean = 0.0;
        std::map<std::string, double> means;
        for (const entry& e : structures) {
          extras_t extras;
          const summary s = e.run(sc, extras);
          means[e.name] = s.mean;
          if (std::string(e.name) == "skip-list") skiplist_mean = s.mean;
          row.push_back(lfst::workload::table::fmt(s.mean, 0) + " +/- " +
                        lfst::workload::table::fmt(s.stddev, 0));
          bench_json.record(std::string(e.name) + "/" +
                                lfst::bench::mix_name(m) + "/" +
                                lfst::bench::range_name(range) + "/t" +
                                std::to_string(threads),
                            threads, s, std::move(extras));
        }
        row.emplace_back("");
        tab.add_row(row);
        for (const entry& e : structures) {
          if (std::string(e.name) != "skip-list" && skiplist_mean > 0.0) {
            vs_skiplist_ratio[e.name].push_back(means[e.name] / skiplist_mean);
          }
        }
        if (m.contains_pct >= 60 && range == lfst::workload::kRangeLarge &&
            threads == cfg.threads.back()) {
          large_read_skiptree = means["skip-tree"];
          large_read_skiplist = skiplist_mean;
        }
      }
      tab.print();
      std::printf("\n");
    }
  }

  std::printf("-- summary ratios (paper Sec. V quotes, recomputed from this "
              "run) --\n");
  for (const auto& [name, ratios] : vs_skiplist_ratio) {
    double sum = 0.0;
    for (double r : ratios) sum += r;
    const double avg = sum / static_cast<double>(ratios.size());
    std::printf("%-12s vs skip-list, averaged over all panels/threads: %+.0f%%"
                " (paper: skip-tree +41%%, opt-tree +26%%)\n",
                name.c_str(), (avg - 1.0) * 100.0);
  }
  if (large_read_skiplist > 0.0) {
    std::printf("skip-tree vs skip-list, large read-dominated panel at max "
                "threads: %+.0f%% (paper: +129%%)\n",
                (large_read_skiptree / large_read_skiplist - 1.0) * 100.0);
  }
  return 0;
}

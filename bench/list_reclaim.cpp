// Ablation B2: reclamation schemes head-to-head on the Michael-Harris list.
//
// The list is the substrate the paper builds on (Sec. II) and the canonical
// structure for comparing safe-memory-reclamation schemes: every remove
// retires a node, every traversal touches many.  This harness runs the same
// mixes over the EBR, hazard-pointer, and leaky variants.  Expected shape
// (Michael 2004; Hart et al. 2007): EBR's per-operation cost beats hazard
// pointers' per-dereference publication fence; leaky upper-bounds both.
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "list/harris_list.hpp"

namespace {

using key = long;
using lfst::bench::bench_config;
using lfst::workload::scenario;

template <typename Factory>
double throughput(const scenario& sc, Factory&& f) {
  return lfst::workload::run_scenario(sc, std::forward<Factory>(f)).mean;
}

}  // namespace

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::trace_reporter traces(argc, argv);
  const bench_config cfg = bench_config::from_env();
  lfst::bench::print_header(
      "Ablation B2: Michael-Harris list, EBR vs hazard pointers vs leaky",
      cfg);

  // Lists are O(n) per op: shrink the working set so a trial stays sane.
  const std::uint64_t range = 512;
  const std::size_t ops = cfg.ops / 4;
  std::printf("key range=%llu, ops/trial=%zu\n\n",
              static_cast<unsigned long long>(range), ops);

  lfst::workload::table tab(
      {"mix", "EBR (ops/ms)", "hazard (ops/ms)", "leaky (ops/ms)"});
  for (const auto& m :
       {lfst::workload::kReadDominated, lfst::workload::kWriteDominated}) {
    scenario sc;
    sc.operations = m;
    sc.key_range = range;
    sc.total_ops = ops;
    sc.threads = cfg.threads.back();
    sc.trials = cfg.trials;
    sc.seed = 0x115;

    const double ebr = throughput(sc, [] {
      return std::make_unique<lfst::list::harris_list<key>>();
    });
    const double hp = throughput(sc, [] {
      return std::make_unique<lfst::list::harris_list_hp<key>>();
    });
    const double leaky = throughput(sc, [] {
      return std::make_unique<lfst::list::harris_list<
          key, std::less<key>, lfst::reclaim::leaky_policy>>();
    });
    tab.add_row({lfst::bench::mix_name(m), lfst::workload::table::fmt(ebr, 0),
                 lfst::workload::table::fmt(hp, 0),
                 lfst::workload::table::fmt(leaky, 0)});
  }
  tab.print();
  std::printf("\nexpected shape: leaky >= EBR > hazard pointers (per-hop "
              "publication fences).\n");
  return 0;
}

// WAL overhead: what durability costs per mutation.
//
// A/B across the same insert/remove-heavy workload: the plain in-memory
// skip-tree against durable_tree under each fsync policy (none / interval
// / every_commit).  The interesting numbers are the ratios -- policy
// `none` prices the logging machinery itself (record encode + per-thread
// buffer + flusher writes), `interval` adds the background fsync cadence,
// and `every_commit` shows the group-commit floor (latency-bound by the
// device sync; throughput recovers with thread count as more acks share
// one fsync).  Storage counters (appends, fsyncs, commit batch histogram)
// are exported through the --metrics-json sidecar, which CI gates on:
// a run whose storage.wal.appends is zero means the facade silently
// stopped logging.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "skiptree/skip_tree.hpp"
#include "storage/durable_tree.hpp"

namespace {

using key = long;
using lfst::bench::bench_config;
using lfst::storage::durable_options;
using lfst::storage::durable_tree;
using lfst::storage::fsync_policy;

constexpr long kKeyRange = 1 << 16;

/// ops/ms for `threads` workers doing a 50/50 add/remove mix through `fn`.
template <typename Fn>
double run_trial(int threads, std::uint64_t ops_total, std::uint64_t seed,
                 Fn&& op) {
  std::vector<std::thread> workers;
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      lfst::xoshiro256ss rng{
          lfst::thread_seed(seed, static_cast<std::uint64_t>(t))};
      const std::uint64_t n = ops_total / static_cast<std::uint64_t>(threads);
      for (std::uint64_t i = 0; i < n; ++i) {
        const key k = static_cast<key>(rng.below(kKeyRange));
        op(k, rng.below(2) == 0);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  return static_cast<double>(ops_total) / ms;
}

template <typename MakeOp>
lfst::summary measure(const bench_config& cfg, int threads, MakeOp&& make) {
  std::vector<double> samples;
  for (int trial = 0; trial < cfg.trials; ++trial) {
    auto ctx = make();  // fresh tree (and fresh directory) per trial
    samples.push_back(
        run_trial(threads, cfg.ops,
                  0x5eedull + static_cast<std::uint64_t>(trial),
                  [&](key k, bool add) { ctx->apply(k, add); }));
  }
  return lfst::summary::of(std::move(samples));
}

struct plain_ctx {
  lfst::skiptree::skip_tree<key> tree;
  void apply(key k, bool add) { add ? (void)tree.add(k) : (void)tree.remove(k); }
};

struct durable_ctx {
  explicit durable_ctx(fsync_policy p) {
    std::filesystem::remove_all(dir);
    durable_options o;
    o.wal.sync = p;
    o.checkpoint_bytes = 256ull << 20;  // out of the way: measure the WAL
    tree.emplace(dir, o);
  }
  ~durable_ctx() {
    if (tree) tree->close();
    tree.reset();
    std::filesystem::remove_all(dir);
  }
  void apply(key k, bool add) {
    add ? (void)tree->add(k) : (void)tree->remove(k);
  }
  std::string dir = "wal_bench_scratch";
  std::optional<durable_tree<key>> tree;
};

}  // namespace

int main(int argc, char** argv) {
  lfst::bench::metrics_reporter metrics(argc, argv);
  lfst::bench::bench_json_reporter json("wal_overhead", argc, argv);
  lfst::bench::telemetry_reporter telemetry(argc, argv);
  const bench_config cfg = bench_config::from_env();
  lfst::bench::print_header("WAL overhead: plain tree vs durable_tree", cfg);

  lfst::workload::table tab({"configuration", "threads", "ops/ms", "vs plain"});
  for (int threads : cfg.threads) {
    const auto plain = measure(cfg, threads, [] {
      return std::make_unique<plain_ctx>();
    });
    json.record("plain", threads, plain);
    tab.add_row({"plain skip_tree", std::to_string(threads),
                 lfst::workload::table::fmt(plain.mean, 0), "1.00x"});
    for (const fsync_policy p :
         {fsync_policy::none, fsync_policy::interval,
          fsync_policy::every_commit}) {
      const auto s = measure(cfg, threads, [p] {
        return std::make_unique<durable_ctx>(p);
      });
      const std::string name =
          std::string("durable/") + lfst::storage::fsync_policy_name(p);
      json.record(name, threads, s);
      char ratio[32];
      std::snprintf(ratio, sizeof(ratio), "%.2fx",
                    plain.mean > 0 ? s.mean / plain.mean : 0.0);
      tab.add_row({name, std::to_string(threads),
                   lfst::workload::table::fmt(s.mean, 0), ratio});
    }
  }
  tab.print();
  return 0;
}
